// Package a holds the persistorder golden cases: nvm writes that reach a
// commit sink (Store8/CAS8 or a commit* call) with and without an
// intervening persist barrier.
package a

import (
	"nvm"
	"sim"
)

type metaLog struct{ dev *nvm.Device }

func (m *metaLog) commit(ctx *sim.Ctx) {
	var buf [64]byte
	m.dev.WriteNT(ctx, buf[:], 0) // the entry write IS the append; no sink follows
	m.dev.Fence(ctx)
}

// badStorePublish: non-temporal data write reaches the tag publish with no
// fence — a crash between them commits metadata whose data never persisted.
func badStorePublish(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 128) // want `nvm WriteNT may reach commit sink Store8 without an intervening persist barrier`
	dev.Store8(ctx, 0, 1)
}

// badCachedWriteFenceOnly: Fence orders non-temporal stores but does not
// write back a cached Write; only Flush/Persist make it durable.
func badCachedWriteFenceOnly(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.Write(ctx, data, 128) // want `nvm Write may reach commit sink Store8 without an intervening persist barrier`
	dev.Fence(ctx)
	dev.Store8(ctx, 0, 1)
}

// badCommitCall: the sink can also be a commit* call (metadata-log append).
func badCommitCall(ctx *sim.Ctx, dev *nvm.Device, m *metaLog, data []byte) {
	dev.WriteNT(ctx, data, 128) // want `nvm WriteNT may reach commit sink commit without an intervening persist barrier`
	m.commit(ctx)
}

// badBranchSkipsFence: one path reaches the publish without the barrier.
func badBranchSkipsFence(ctx *sim.Ctx, dev *nvm.Device, data []byte, full bool) {
	dev.WriteNT(ctx, data, 128) // want `nvm WriteNT may reach commit sink Store8 without an intervening persist barrier`
	if full {
		dev.Fence(ctx)
	}
	dev.Store8(ctx, 0, 1)
}

// goodFencedStore: WriteNT-Fence-Store8 is the directory.create shape.
func goodFencedStore(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 128)
	dev.Fence(ctx)
	dev.Store8(ctx, 0, 1)
}

// goodFlushedWrite: cached writes persist via Flush (or Persist).
func goodFlushedWrite(ctx *sim.Ctx, dev *nvm.Device, m *metaLog, data []byte) {
	dev.Write(ctx, data, 128)
	dev.Flush(ctx, 128, len(data))
	dev.Fence(ctx)
	m.commit(ctx)
}

// goodPersist: Persist = Flush + Fence.
func goodPersist(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.Write(ctx, data, 128)
	dev.Persist(ctx, 128, len(data))
	dev.Store8(ctx, 0, 1)
}

// goodNoSink: a write whose function never reaches a commit is the
// shadow-data phase; the barrier lives in the caller.
func goodNoSink(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 128)
}

// goodAnnotated: multi-function commit path, barrier in the caller.
func goodAnnotated(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 128) //mgsp:deferred-persist caller fences before its commit
	dev.Store8(ctx, 0, 1)
}

// goodAnnotatedFuncDoc: the escape hatch also works on the function doc.
//
//mgsp:deferred-persist whole function is a deferred-persist commit helper
func goodAnnotatedFuncDoc(ctx *sim.Ctx, dev *nvm.Device, data []byte) {
	dev.WriteNT(ctx, data, 128)
	dev.Store8(ctx, 0, 1)
}
