package persistorder_test

import (
	"testing"

	"mgsp/internal/analysis/analysistest"
	"mgsp/internal/analysis/persistorder"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), persistorder.Analyzer, "a", "srv", "cachecorpus", "xp")
}
