// Package persistorder defines an analyzer enforcing the paper's media-op
// discipline (PAPER.md §III): shadow data written with nvm.Device.Write or
// WriteNT must be made durable — Flush/Persist for cached Write, any of
// Flush/Persist/Fence for non-temporal WriteNT — before execution reaches a
// metadata-log append or commit store that publishes it. A torn ordering
// here is exactly the bug class a crash between the commit entry and its
// data exposes: recovery replays a commit whose data never persisted.
//
// The check is interprocedural over the summary engine (DESIGN.md §15).
// Commit sinks are Device.Store8/Device.CAS8 (8-byte publish stores), any
// call whose callee name begins with "commit", and any callee whose summary
// says a commit sink is reachable from its entry before a barrier
// (CommitBare*). Barriers are the direct Device calls plus any callee whose
// every path crosses one (Barrier*All). A callee that returns with a write
// still unbarriered (WriteBare*) makes its call sites write sources in the
// caller, so a barrier that legitimately lives in the caller is verified
// there instead of assumed. Residual multi-function shapes the summaries
// cannot see (e.g. a barrier behind dynamic dispatch) are annotated
// //mgsp:deferred-persist with a one-line justification.
package persistorder

import (
	"fmt"
	"go/ast"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"mgsp/internal/analysis/cfgscan"
	"mgsp/internal/analysis/mgspmatch"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/vetreport"
)

const doc = `check that nvm writes are flushed/fenced before a reachable metadata-log commit

Flags nvm.Device.Write/WriteNT calls — and calls to functions whose summary
says they return with such a write unbarriered — whose enclosing function can
reach a commit sink (Device.Store8/CAS8, a commit* call, or a callee that
commits before barriering) without an intervening persist barrier
(Flush/Persist; Fence also suffices for WriteNT). Suppress with
//mgsp:deferred-persist <justification>.`

var Analyzer = &analysis.Analyzer{
	Name:       "persistorder",
	Doc:        doc,
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer, summary.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*mgspmatch.Directives)(nil)),
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)
	if mgspmatch.PkgPathIs(pass.Pkg.Path(), "nvm") {
		// The device implementation itself sits below the discipline.
		return dirs, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	sum := pass.ResultOf[summary.Analyzer].(*summary.Result)

	// scan reports a pending write of kind write at the given call site if a
	// commit sink is reachable before a barrier.
	scan := func(g *cfg.CFG, p cfgscan.Pos, site *ast.CallExpr, write, src string) {
		hit := cfgscan.ReachableAfter(g, p, func(c *ast.CallExpr) cfgscan.Class {
			return sum.PersistClass(c, write)
		})
		if hit == nil {
			return
		}
		sink := "commit store"
		if fn := mgspmatch.Callee(pass.TypesInfo, hit); fn != nil {
			sink = fn.Name()
		}
		msg := fmt.Sprintf("%s may reach commit sink %s without an intervening persist barrier (Flush/Persist%s); add the barrier or annotate //mgsp:deferred-persist with a justification",
			src, sink, fenceHint(write))
		suppressed := dirs.Suppress(site.Pos(), mgspmatch.DeferredPersist)
		vetreport.Report(pass, sum.ReportPath, site.Pos(), msg, suppressed)
	}

	check := func(g *cfg.CFG) {
		if g == nil {
			return
		}
		for _, b := range g.Blocks {
			for i, call := range cfgscan.Calls(b) {
				p := cfgscan.Pos{Block: b, Index: i}
				if write := mgspmatch.DeviceMethod(pass.TypesInfo, call); write == "Write" || write == "WriteNT" {
					scan(g, p, call, write, "nvm "+write)
					continue
				}
				cs := sum.CallSummary(call)
				if cs == nil || (!cs.WriteBareCached && !cs.WriteBareNT) {
					continue
				}
				fn := mgspmatch.Callee(pass.TypesInfo, call)
				name := "call"
				if fn != nil {
					name = fn.Name()
				}
				if cs.WriteBareCached {
					scan(g, p, call, "Write", name+" (returns with an unflushed Write)")
				}
				if cs.WriteBareNT {
					scan(g, p, call, "WriteNT", name+" (returns with an unfenced WriteNT)")
				}
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					check(cfgs.FuncDecl(n))
				}
			case *ast.FuncLit:
				check(cfgs.FuncLit(n))
			}
			return true
		})
	}
	return dirs, nil
}

func fenceHint(write string) string {
	if write == "WriteNT" {
		return "/Fence"
	}
	return ""
}
