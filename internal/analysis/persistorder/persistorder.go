// Package persistorder defines an analyzer enforcing the paper's media-op
// discipline (PAPER.md §III): shadow data written with nvm.Device.Write or
// WriteNT must be made durable — Flush/Persist for cached Write, any of
// Flush/Persist/Fence for non-temporal WriteNT — before the enclosing
// function reaches a metadata-log append or commit store that publishes it.
// A torn ordering here is exactly the bug class a crash between the commit
// entry and its data exposes: recovery replays a commit whose data never
// persisted.
//
// The check is intra-procedural over the control-flow graph. Commit sinks
// are Device.Store8/Device.CAS8 (8-byte publish stores) and any call whose
// callee name begins with "commit" (metaLog.commit, commitSnap,
// commitSnapshotMark, file.commitChanges, ...). Multi-function commit paths
// whose barrier legitimately lives in a caller are annotated
// //mgsp:deferred-persist with a one-line justification.
package persistorder

import (
	"fmt"
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"mgsp/internal/analysis/cfgscan"
	"mgsp/internal/analysis/mgspmatch"
)

const doc = `check that nvm writes are flushed/fenced before a reachable metadata-log commit

Flags nvm.Device.Write/WriteNT calls whose enclosing function can reach a
commit sink (Device.Store8/CAS8 or a commit* call) without an intervening
persist barrier (Flush/Persist; Fence also suffices for WriteNT). Suppress
with //mgsp:deferred-persist <justification> when the barrier is in a caller.`

var Analyzer = &analysis.Analyzer{
	Name:     "persistorder",
	Doc:      doc,
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if mgspmatch.PkgPathIs(pass.Pkg.Path(), "nvm") {
		// The device implementation itself sits below the discipline.
		return nil, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	dirs := mgspmatch.ParseDirectives(pass.Fset, pass.Files)

	check := func(g *cfg.CFG) {
		if g == nil {
			return
		}
		for _, b := range g.Blocks {
			for i, call := range cfgscan.Calls(b) {
				write := mgspmatch.DeviceMethod(pass.TypesInfo, call)
				if write != "Write" && write != "WriteNT" {
					continue
				}
				if dirs.Has(call.Pos(), mgspmatch.DeferredPersist) {
					continue
				}
				hit := cfgscan.ReachableAfter(g, cfgscan.Pos{Block: b, Index: i}, func(c *ast.CallExpr) cfgscan.Class {
					if m := mgspmatch.DeviceMethod(pass.TypesInfo, c); m != "" {
						switch {
						case m == "Flush" || m == "Persist":
							return cfgscan.Stop
						case m == "Fence":
							// An sfence orders non-temporal stores but does
							// not write back a cached Write.
							if write == "WriteNT" {
								return cfgscan.Stop
							}
							return cfgscan.Continue
						case m == "Store8" || m == "CAS8":
							return cfgscan.Hit
						}
						return cfgscan.Continue
					}
					if fn := mgspmatch.Callee(pass.TypesInfo, c); fn != nil &&
						strings.HasPrefix(strings.ToLower(fn.Name()), "commit") {
						return cfgscan.Hit
					}
					return cfgscan.Continue
				})
				if hit != nil {
					sink := "commit store"
					if fn := mgspmatch.Callee(pass.TypesInfo, hit); fn != nil {
						sink = fn.Name()
					}
					pass.Report(analysis.Diagnostic{
						Pos: call.Pos(),
						Message: fmt.Sprintf("nvm %s may reach commit sink %s without an intervening persist barrier (Flush/Persist%s); add the barrier or annotate //mgsp:deferred-persist with a justification",
							write, sink, fenceHint(write)),
					})
				}
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					check(cfgs.FuncDecl(n))
				}
			case *ast.FuncLit:
				check(cfgs.FuncLit(n))
			}
			return true
		})
	}
	return nil, nil
}

func fenceHint(write string) string {
	if write == "WriteNT" {
		return "/Fence"
	}
	return ""
}
