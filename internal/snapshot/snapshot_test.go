package snapshot

import (
	"bytes"
	"sync"
	"testing"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func newHost(t *testing.T) (*core.FS, *sim.Ctx) {
	t.Helper()
	dev := nvm.New(128<<20, sim.ZeroCosts())
	fs, err := core.New(dev, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return fs, sim.NewCtx(0, 1)
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%251)
	}
	return b
}

func TestManagerLifecycle(t *testing.T) {
	fs, ctx := newHost(t)
	m := New(fs)
	f, err := fs.Create(ctx, "src")
	if err != nil {
		t.Fatal(err)
	}
	img := pattern(96<<10, 7)
	if _, err := f.WriteAt(ctx, img, 0); err != nil {
		t.Fatal(err)
	}

	id, err := m.Take(ctx, "src")
	if err != nil {
		t.Fatal(err)
	}
	infos, err := m.List(ctx, "src")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != id || infos[0].Size != int64(len(img)) {
		t.Fatalf("list: %+v", infos)
	}

	sh, err := m.Open(ctx, "src", id)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(img))
	if _, err := sh.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("snapshot handle served wrong bytes")
	}
	if err := m.Drop(ctx, "src", id); err != core.ErrSnapshotBusy {
		t.Fatalf("drop while open: %v", err)
	}
	sh.Close(ctx)
	if err := m.Drop(ctx, "src", id); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Taken.Load() != 1 || m.Stats().Dropped.Load() != 1 {
		t.Fatalf("stats: taken=%d dropped=%d",
			m.Stats().Taken.Load(), m.Stats().Dropped.Load())
	}
}

// TestCloneUnderConcurrentWrites is the headline property: cloning from a
// snapshot while writers hammer the source yields an exact copy of the
// frozen image, never a torn mix.
func TestCloneUnderConcurrentWrites(t *testing.T) {
	fs, ctx := newHost(t)
	m := New(fs)
	f, err := fs.Create(ctx, "src")
	if err != nil {
		t.Fatal(err)
	}
	const sz = 512 << 10
	img := pattern(sz, 3)
	if _, err := f.WriteAt(ctx, img, 0); err != nil {
		t.Fatal(err)
	}
	id, err := m.Take(ctx, "src")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Distinct worker ID: the sticky-intent map and MGL holder
		// bookkeeping are keyed per worker, so two goroutines sharing an
		// ID can release each other's in-flight intentions.
		wctx := sim.NewCtx(1, 2)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			off := int64((i * 13) % (sz / 4096) * 4096)
			if _, err := f.WriteAt(wctx, pattern(4096, byte(i)), off); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	if err := m.Clone(ctx, "src", id, "dst"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	df, err := fs.Open(ctx, "dst")
	if err != nil {
		t.Fatal(err)
	}
	if df.Size() != sz {
		t.Fatalf("clone size %d, want %d", df.Size(), sz)
	}
	got := make([]byte, sz)
	if _, err := df.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("clone does not match frozen image")
	}
	if m.Stats().Clones.Load() != 1 {
		t.Fatalf("clones stat = %d", m.Stats().Clones.Load())
	}

	// The clone is independent: dropping the snapshot and rewriting the
	// source leaves it untouched.
	if err := m.Drop(ctx, "src", id); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, pattern(4096, 99), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := df.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("clone changed after source writes")
	}
}

func TestCloneErrors(t *testing.T) {
	fs, ctx := newHost(t)
	m := New(fs)
	if err := m.Clone(ctx, "missing", 1, "dst"); err == nil {
		t.Fatal("clone of missing file succeeded")
	}
	f, _ := fs.Create(ctx, "src")
	f.WriteAt(ctx, pattern(4096, 1), 0)
	if err := m.Clone(ctx, "src", 12345, "dst"); err != core.ErrSnapshotNotFound {
		t.Fatalf("clone of unknown snapshot: %v", err)
	}
}
