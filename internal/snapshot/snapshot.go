// Package snapshot provides the user-facing snapshot API over an MGSP file
// system: instant per-file snapshots, read-only frozen handles, and
// writable clones materialized from a frozen image. The heavy lifting
// (copy-on-write pinning, crash-consistent lifecycle entries) lives in
// internal/core; this package is the orchestration layer tools and
// applications program against.
package snapshot

import (
	"fmt"
	"sync/atomic"

	"mgsp/internal/core"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Host is the file-system surface the manager drives. *core.FS satisfies it.
type Host interface {
	Snapshot(ctx *sim.Ctx, name string) (core.SnapID, error)
	OpenSnapshot(ctx *sim.Ctx, name string, id core.SnapID) (vfs.File, error)
	DropSnapshot(ctx *sim.Ctx, name string, id core.SnapID) error
	Snapshots(ctx *sim.Ctx, name string) ([]core.SnapInfo, error)
	Open(ctx *sim.Ctx, name string) (vfs.File, error)
	Create(ctx *sim.Ctx, name string) (vfs.File, error)
}

// Stats counts manager-level activity.
type Stats struct {
	Taken   atomic.Int64
	Dropped atomic.Int64
	Clones  atomic.Int64
}

// Manager wraps a Host with convenience operations (Clone) and counters.
type Manager struct {
	host  Host
	stats Stats
}

// New builds a Manager over the host file system.
func New(host Host) *Manager { return &Manager{host: host} }

// Stats returns the live counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// Take snapshots the named file.
func (m *Manager) Take(ctx *sim.Ctx, name string) (core.SnapID, error) {
	id, err := m.host.Snapshot(ctx, name)
	if err == nil {
		m.stats.Taken.Add(1)
	}
	return id, err
}

// Open returns a read-only handle on the frozen image.
func (m *Manager) Open(ctx *sim.Ctx, name string, id core.SnapID) (vfs.File, error) {
	return m.host.OpenSnapshot(ctx, name, id)
}

// Drop removes the snapshot (fails with core.ErrSnapshotBusy while handles
// are open).
func (m *Manager) Drop(ctx *sim.Ctx, name string, id core.SnapID) error {
	err := m.host.DropSnapshot(ctx, name, id)
	if err == nil {
		m.stats.Dropped.Add(1)
	}
	return err
}

// List returns the live snapshots of the named file.
func (m *Manager) List(ctx *sim.Ctx, name string) ([]core.SnapInfo, error) {
	return m.host.Snapshots(ctx, name)
}

// cloneChunk is the copy granularity for Clone (64 KiB keeps the simulated
// write count realistic without thousands of tiny ops).
const cloneChunk = 64 << 10

// Clone materializes snapshot id of src as a brand-new file dst: a full
// copy of the frozen image, taken through a snapshot handle so concurrent
// writers to src never tear the clone. The clone is an ordinary file with
// no further relationship to src or the snapshot.
func (m *Manager) Clone(ctx *sim.Ctx, src string, id core.SnapID, dst string) error {
	sh, err := m.host.OpenSnapshot(ctx, src, id)
	if err != nil {
		return err
	}
	defer sh.Close(ctx)
	df, err := m.host.Create(ctx, dst)
	if err != nil {
		return err
	}
	defer df.Close(ctx)

	size := sh.Size()
	buf := make([]byte, cloneChunk)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if n > size-off {
			n = size - off
		}
		rn, err := sh.ReadAt(ctx, buf[:n], off)
		if err != nil {
			return fmt.Errorf("snapshot: clone read at %d: %w", off, err)
		}
		if int64(rn) != n {
			return fmt.Errorf("snapshot: clone short read at %d: %d of %d", off, rn, n)
		}
		if _, err := df.WriteAt(ctx, buf[:n], off); err != nil {
			return fmt.Errorf("snapshot: clone write at %d: %w", off, err)
		}
		off += n
	}
	if err := df.Fsync(ctx); err != nil {
		return err
	}
	m.stats.Clones.Add(1)
	return nil
}
