package torture

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// TestDisjointWritersMatchSerialOracle is the isolation property test: K
// writers on K disjoint files, racing on one FS, must leave every file
// byte-identical to a serial execution of the same per-file traces on a
// fresh FS. Concurrency across files (shared allocator, shared metadata
// log, shared lock tree) must be invisible in the data.
func TestDisjointWritersMatchSerialOracle(t *testing.T) {
	const (
		writers  = 4
		ops      = 40
		fileSize = 64 << 10
		maxWrite = 4 << 10
		seed     = 31
	)

	type wop struct {
		off int64
		n   int
		pat byte
	}
	tracesFor := func(w int) []wop {
		rng := rand.New(rand.NewSource(seed + int64(w)*2654435761))
		out := make([]wop, ops)
		for i := range out {
			out[i] = wop{
				off: rng.Int63n(fileSize - maxWrite),
				n:   1 + rng.Intn(maxWrite),
				pat: byte(w*37+i)%254 + 1,
			}
		}
		return out
	}

	runOn := func(concurrent bool) [][]byte {
		dev := nvm.New(16<<20, sim.ZeroCosts())
		fs := core.MustNew(dev, core.DefaultOptions())
		setup := sim.NewCtx(100, seed)
		for w := 0; w < writers; w++ {
			f, err := fs.Create(setup, fmt.Sprintf("f%d", w))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(setup, make([]byte, fileSize), 0); err != nil {
				t.Fatal(err)
			}
			if err := f.Fsync(setup); err != nil {
				t.Fatal(err)
			}
			f.Close(setup)
		}
		body := func(w int) {
			ctx := sim.NewCtx(w, seed+int64(w))
			h, err := fs.Open(ctx, fmt.Sprintf("f%d", w))
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Close(ctx)
			for _, o := range tracesFor(w) {
				if _, err := h.WriteAt(ctx, bytes.Repeat([]byte{o.pat}, o.n), o.off); err != nil {
					t.Error(err)
					return
				}
			}
			if err := h.Fsync(ctx); err != nil {
				t.Error(err)
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) { defer wg.Done(); body(w) }(w)
			}
			wg.Wait()
		} else {
			for w := 0; w < writers; w++ {
				body(w)
			}
		}
		imgs := make([][]byte, writers)
		for w := 0; w < writers; w++ {
			var h vfs.File
			h, err := fs.Open(setup, fmt.Sprintf("f%d", w))
			if err != nil {
				t.Fatal(err)
			}
			imgs[w] = make([]byte, fileSize)
			if _, err := h.ReadAt(setup, imgs[w], 0); err != nil {
				t.Fatal(err)
			}
			h.Close(setup)
		}
		return imgs
	}

	serial := runOn(false)
	concurrent := runOn(true)
	for w := 0; w < writers; w++ {
		if i := core.FirstDivergence(concurrent[w], serial[w]); i != -1 {
			t.Errorf("file f%d diverges from the serial oracle at byte %d: %#x want %#x",
				w, i, concurrent[w][i], serial[w][i])
		}
	}
}
