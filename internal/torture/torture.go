// Package torture is the concurrent crash-consistency torture harness for
// MGSP: N writer goroutines issue a mixed workload (WriteAt, WriteMulti,
// Fsync, Snapshot, DropSnapshot) over overlapping regions of one shared
// file while the simulated NVM device is armed to crash at a sampled
// media-op index. After the crash the harness remounts through the §III-D
// recovery path and checks an op-atomicity oracle: every recovered region
// must equal the image of exactly one operation that could have been the
// region's last committed (or in-flight committed) write — never a torn
// interleaving — every region of a WriteMulti must commit together, every
// live snapshot must still serve its frozen image, and the block allocator
// must audit clean.
//
// Two execution modes share one oracle:
//
//   - Concurrent (default): real goroutines race on the real lock paths, so
//     the run composes with -race. The per-run verdict is sound — the
//     oracle's happens-before order comes from a sim.Schedule recorder — but
//     the interleaving belongs to the Go scheduler.
//   - Serial (replay): a single goroutine interleaves the same per-writer
//     op traces in a seeded round-robin. The media-op stream, and therefore
//     the crash placement and the 8-byte tear, is a pure function of
//     (seed, writers, crash index): every violation found in serial mode
//     reproduces bit-identically from its repro line.
//
// Violations print a `go test -run`-able repro line; see Violation.Repro.
package torture

import (
	"fmt"
	"math/rand"
	"sync"

	"mgsp/internal/core"
	"mgsp/internal/crashtest"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Worker ids outside the writer range (writers use 0..Writers-1). Kept well
// below core's cleanerWorker id.
const (
	setupWorker    = 1 << 16
	recoveryWorker = 1<<16 + 1
)

const fileName = "torture.dat"

// Config parameterizes one torture run. The zero value of every field gets
// a usable default from withDefaults; Seed and CrashAt are the two knobs a
// repro line pins.
type Config struct {
	Writers    int   // concurrent writers (default 4)
	Ops        int   // operations per writer (default 25)
	Regions    int   // oracle regions in the shared file (default 12)
	RegionSize int64 // bytes per region, multiple of 16 (default 1024)
	Seed       int64 // drives trace generation, tear PRNG, serial interleaving
	CrashAt    int64 // media ops after arming until the crash; 0 = run to completion

	// Op mix: roughly one in every N ops (0 = default, negative disables).
	// The defaults are part of the replay contract — a repro line encodes
	// only (seed, writers, ops, crash, torn, flusher), so every run uses the
	// same mix.
	FsyncEvery int // default 8
	SnapEvery  int // default 10
	MultiEvery int // default 6
	ReadEvery  int // flusher mode: cache-side ops (reads + private writes), default 3

	// Flusher arms the cache/write-back path: the FS mounts with a small
	// DRAM frame pool in write-back mode, traces gain ReadAt ops (racing the
	// optimistic frame reads against buffered writes and background drains),
	// and each writer gets a private region checked live for
	// read-your-writes. Crash indices then also sample the flusher mid-drain.
	Flusher bool

	// InjectTorn makes writer 0's last op deliberately violate op atomicity
	// (it writes half of a reserved region while the oracle is told the
	// whole region was written). Used to prove the oracle catches torn
	// states and that repro lines replay them.
	InjectTorn bool

	// Serial selects the deterministic single-goroutine replay mode.
	Serial bool

	DevSize int64
	Opts    core.Options // zero value = core.DefaultOptions()
}

func (cfg Config) withDefaults() Config {
	if cfg.Writers == 0 {
		cfg.Writers = 4
	}
	if cfg.Ops == 0 {
		cfg.Ops = 25
	}
	if cfg.Regions == 0 {
		cfg.Regions = 12
	}
	if cfg.RegionSize == 0 {
		cfg.RegionSize = 1024
	}
	if cfg.FsyncEvery == 0 {
		cfg.FsyncEvery = 8
	}
	if cfg.SnapEvery == 0 {
		cfg.SnapEvery = 10
	}
	if cfg.MultiEvery == 0 {
		cfg.MultiEvery = 6
	}
	if cfg.ReadEvery == 0 {
		cfg.ReadEvery = 3
	}
	if cfg.Opts.Degree == 0 {
		cfg.Opts = core.DefaultOptions()
	}
	if cfg.Flusher && cfg.Opts.CacheFrames == 0 {
		// A deliberately tiny pool: evictions and all-dirty backpressure are
		// part of what the sweep exercises. Under the frozen ZeroCosts clock
		// the interval never fires, so drains come from the dirty watermark
		// (Frames/4) — racing the foreground exactly where crashes hurt.
		cfg.Opts.CacheFrames = 8
		cfg.Opts.WriteBack = true
		cfg.Opts.FlushInterval = 1
	}
	if cfg.DevSize == 0 {
		cfg.DevSize = 4 << 20
		if min := cfg.fileSize() * 16; cfg.DevSize < min {
			cfg.DevSize = min
		}
	}
	return cfg
}

func (cfg Config) check() error {
	if cfg.Writers < 1 || cfg.Ops < 1 || cfg.Regions < 1 {
		return fmt.Errorf("torture: need at least one writer, op and region")
	}
	if cfg.RegionSize%16 != 0 {
		return fmt.Errorf("torture: region size %d not a multiple of 16", cfg.RegionSize)
	}
	return nil
}

// fileSize covers every oracle region: the shared ones, the reserved
// torn-injection region, and (in flusher mode) one private region per writer.
func (cfg Config) fileSize() int64 { return int64(cfg.totalRegions()) * cfg.RegionSize }

// totalRegions includes the reserved region — and the per-writer private
// regions in flusher mode — so the oracle scans them too.
func (cfg Config) totalRegions() int {
	n := cfg.Regions + 1
	if cfg.Flusher {
		n += cfg.Writers
	}
	return n
}

// privateRegion is writer w's read-your-writes region (flusher mode): nobody
// else writes it, so a read by w must observe exactly w's last acked write —
// buffered in a DRAM frame or already drained, the distinction must be
// invisible.
func (cfg Config) privateRegion(w int) int { return cfg.Regions + 1 + w }

type opKind uint8

const (
	opWrite opKind = iota
	opMulti
	opFsync
	opSnap
	opDrop
	opRead
)

func (k opKind) String() string {
	switch k {
	case opWrite:
		return "write"
	case opMulti:
		return "writev"
	case opFsync:
		return "fsync"
	case opSnap:
		return "snap"
	case opDrop:
		return "drop"
	case opRead:
		return "read"
	}
	return "?"
}

// op is one generated trace step.
type op struct {
	kind    opKind
	regions []int
	torn    bool
}

// traces generates the per-writer op traces. They are a pure function of
// the config: the same (seed, writers, ops, mix) always yields the same
// traces, which is half of the replay contract (the other half is the
// serial interleaving).
func traces(cfg Config) [][]op {
	all := make([][]op, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(w)*7919 + 1))
		ops := make([]op, 0, cfg.Ops)
		for i := 0; i < cfg.Ops; i++ {
			switch {
			case cfg.InjectTorn && w == 0 && i == cfg.Ops-1:
				// The reserved region is written by nobody else, so the
				// violation depends only on whether this op ran, not on the
				// interleaving.
				ops = append(ops, op{kind: opWrite, regions: []int{cfg.Regions}, torn: true})
			case cfg.Flusher && cfg.ReadEvery > 0 && rng.Intn(cfg.ReadEvery) == 0:
				// Cache-side ops. The && short-circuits, so non-flusher runs
				// draw the exact same rng stream as before — the replay
				// contract for existing repro lines is untouched.
				switch rng.Intn(3) {
				case 0:
					ops = append(ops, op{kind: opWrite, regions: []int{cfg.privateRegion(w)}})
				case 1:
					ops = append(ops, op{kind: opRead, regions: []int{cfg.privateRegion(w)}})
				default:
					ops = append(ops, op{kind: opRead, regions: []int{rng.Intn(cfg.Regions)}})
				}
			case cfg.FsyncEvery > 0 && rng.Intn(cfg.FsyncEvery) == 0:
				ops = append(ops, op{kind: opFsync})
			case cfg.SnapEvery > 0 && rng.Intn(cfg.SnapEvery) == 0:
				if rng.Intn(2) == 0 {
					ops = append(ops, op{kind: opSnap})
				} else {
					ops = append(ops, op{kind: opDrop})
				}
			case cfg.MultiEvery > 0 && rng.Intn(cfg.MultiEvery) == 0 && cfg.Regions >= 2:
				a := rng.Intn(cfg.Regions)
				b := rng.Intn(cfg.Regions - 1)
				if b >= a {
					b++
				}
				ops = append(ops, op{kind: opMulti, regions: []int{a, b}})
			default:
				ops = append(ops, op{kind: opWrite, regions: []int{rng.Intn(cfg.Regions)}})
			}
		}
		all[w] = ops
	}
	return all
}

// stamp is the unique 8-byte word op (w, i) writes across region r. Stamps
// are never zero (regions start zeroed) and encode the target region, so
// the oracle detects misdirected writes as well as torn ones.
func stamp(w, i, r int) uint64 {
	return uint64(0xA5)<<56 | uint64(w&0xFFFF)<<40 | uint64(i&0xFFFF)<<24 |
		uint64(r&0xFFFF)<<8 | 0x5A
}

// stampImage fills one region with the op's stamp.
func stampImage(w, i, r int, size int64) []byte {
	img := make([]byte, size)
	s := stamp(w, i, r)
	for off := 0; off < len(img); off += 8 {
		putLE64(img[off:], s)
	}
	return img
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getLE64(b []byte) uint64 {
	_ = b[7]
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// multiWriter is the WriteMulti capability of MGSP handles.
type multiWriter interface {
	WriteMulti(ctx *sim.Ctx, updates []core.Update) error
}

// runCtx carries one run's live objects. lastPriv[w] is the stamp of writer
// w's last acked private-region write; it is only ever touched from w's own
// goroutine (its writes and its reads), so it needs no synchronization.
type runCtx struct {
	cfg      Config
	dev      *nvm.Device
	fs       *core.FS
	st       *state
	tr       [][]op
	lastPriv []uint64
}

// prepare builds the device, formats the FS, lays out the shared file, and
// readies the oracle state. setup stays usable for post-run verification.
func prepare(cfg Config) (*runCtx, *sim.Ctx, vfs.File, error) {
	dev := nvm.New(cfg.DevSize, sim.ZeroCosts())
	fs, err := core.New(dev, cfg.Opts)
	if err != nil {
		return nil, nil, nil, err
	}
	setup := sim.NewCtx(setupWorker, cfg.Seed)
	h, err := fs.Create(setup, fileName)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := h.WriteAt(setup, make([]byte, cfg.fileSize()), 0); err != nil {
		return nil, nil, nil, err
	}
	if err := h.Fsync(setup); err != nil {
		return nil, nil, nil, err
	}
	r := &runCtx{cfg: cfg, dev: dev, fs: fs, st: newState(cfg), tr: traces(cfg),
		lastPriv: make([]uint64, cfg.Writers)}
	return r, setup, h, nil
}

// execute arms the crash (if configured) and drives the workload in the
// configured mode, leaving the device disarmed afterwards.
func (r *runCtx) execute() {
	r.dev.OnCrash(func(int, int64) { r.st.sched.MarkCrash() })
	if r.cfg.CrashAt > 0 {
		r.dev.ArmCrash(r.cfg.CrashAt, r.cfg.Seed*31+r.cfg.CrashAt)
	}
	if r.cfg.Serial {
		r.runSerial()
	} else {
		r.runConcurrent()
	}
	r.dev.DisarmCrash()
	r.dev.OnCrash(nil)
}

// FileName is the shared file every torture run writes; external checkers
// (mgspfsck) open it on images produced by CrashedDevice.
const FileName = fileName

// CrashedDevice runs the configured workload until the armed crash and
// returns the torn, pre-recovery device — raw material for external
// recovery checkers. cfg.CrashAt must be set; an index past the workload's
// media-op range is an error.
func CrashedDevice(cfg Config) (*nvm.Device, error) {
	cfg = cfg.withDefaults()
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if cfg.CrashAt <= 0 {
		return nil, fmt.Errorf("torture: CrashedDevice needs CrashAt > 0")
	}
	r, _, _, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	r.execute()
	if !r.dev.Crashed() {
		return nil, fmt.Errorf("torture: crash index %d past the workload (%d media ops)",
			cfg.CrashAt, r.dev.Stats().MediaOps.Load())
	}
	return r.dev, nil
}

// Run executes one torture run and verifies the oracle on whatever state
// the run left: the recovered image after a crash, or the live quiescent
// file system after completion. It returns an error only for harness-level
// failures (misconfiguration, setup I/O errors); oracle failures are
// reported as Result.Violations.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.check(); err != nil {
		return nil, err
	}
	r, setup, h, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	dev, st := r.dev, r.st
	r.execute()
	crashed := dev.Crashed()
	res := &Result{
		Crashed:     crashed,
		CrashOp:     -1,
		CrashWorker: -1,
		Schedule:    st.sched,
	}
	for _, sp := range st.sched.Spans() {
		res.OpsStarted++
		if !sp.InFlight() {
			res.OpsCompleted++
		}
	}

	if crashed {
		res.CrashOp, res.CrashWorker = dev.CrashInfo()
		dev.Recover()
		rctx := sim.NewCtx(recoveryWorker, cfg.Seed+1)
		fs2, err := core.Mount(rctx, dev, cfg.Opts)
		if err != nil {
			res.addViolation(cfg, "mount", -1, fmt.Sprintf("recovery failed: %v", err))
			return res, nil
		}
		h2, err := fs2.Open(rctx, fileName)
		if err != nil {
			res.addViolation(cfg, "mount", -1, fmt.Sprintf("open after recovery: %v", err))
			return res, nil
		}
		st.verify(cfg, res, rctx, fs2, h2)
		res.captureTrace(fs2)
		h2.Close(rctx)
	} else {
		// Completed run: same oracle against the live quiescent system.
		st.verify(cfg, res, setup, r.fs, h)
		res.captureTrace(r.fs)
	}

	res.MediaOps = dev.Stats().MediaOps.Load()
	res.WorkerOps = dev.Stats().Workers()
	for _, err := range st.takeErrs() {
		res.addViolation(cfg, "op-error", -1, err.Error())
	}
	for _, v := range st.takeVios() {
		res.addViolation(cfg, v.kind, v.region, v.detail)
	}
	return res, nil
}

// runConcurrent races one goroutine per writer. Every writer runs inside
// crashtest.Shield: a crash panic kills only that writer, and core releases
// its locks on unwind, so blocked peers wake, hit the dead device and die
// under their own Shield.
func (r *runCtx) runConcurrent() {
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			crashtest.Shield(func() {
				ctx := sim.NewCtx(w, r.cfg.Seed+int64(w)*104729+2)
				h, err := r.fs.Open(ctx, fileName)
				if err != nil {
					r.st.noteErr(fmt.Errorf("writer %d open: %w", w, err))
					return
				}
				for i, o := range r.tr[w] {
					r.exec(ctx, w, i, o, h)
				}
				h.Close(ctx)
			})
		}(w)
	}
	wg.Wait()
}

// runSerial interleaves the same per-writer traces on one goroutine in a
// seeded round-robin. One Shield covers the whole loop: the first crash
// panic stops every writer at once, which is exactly what a single-threaded
// replay of a crash means.
func (r *runCtx) runSerial() {
	crashtest.Shield(func() {
		rng := rand.New(rand.NewSource(r.cfg.Seed ^ 0x7075726573657265))
		ctxs := make([]*sim.Ctx, r.cfg.Writers)
		handles := make([]vfs.File, r.cfg.Writers)
		for w := 0; w < r.cfg.Writers; w++ {
			ctxs[w] = sim.NewCtx(w, r.cfg.Seed+int64(w)*104729+2)
			h, err := r.fs.Open(ctxs[w], fileName)
			if err != nil {
				r.st.noteErr(fmt.Errorf("writer %d open: %w", w, err))
				return
			}
			handles[w] = h
		}
		cursor := make([]int, r.cfg.Writers)
		active := make([]int, r.cfg.Writers)
		for w := range active {
			active[w] = w
		}
		for len(active) > 0 {
			k := rng.Intn(len(active))
			w := active[k]
			r.exec(ctxs[w], w, cursor[w], r.tr[w][cursor[w]], handles[w])
			cursor[w]++
			if cursor[w] == len(r.tr[w]) {
				handles[w].Close(ctxs[w])
				active = append(active[:k], active[k+1:]...)
			}
		}
	})
}

// exec issues one trace op, recording its span (and, for writes, its region
// history entries) before the first device access and its completion after
// the call returns. Ops interrupted by the crash stay in flight.
func (r *runCtx) exec(ctx *sim.Ctx, w, i int, o op, h vfs.File) {
	st := r.st
	ops := func() int64 { return r.dev.Stats().MediaOps.Load() }
	switch o.kind {
	case opFsync:
		sp := st.sched.Begin(w, i, o.kind.String(), ops())
		if err := h.Fsync(ctx); err != nil {
			st.noteErr(fmt.Errorf("writer %d op %d fsync: %w", w, i, err))
			return
		}
		st.sched.End(sp, ops())

	case opWrite:
		e := st.beginOp(w, i, o, ops())
		img := stampImage(w, i, o.regions[0], r.cfg.RegionSize)
		off := int64(o.regions[0]) * r.cfg.RegionSize
		if o.torn {
			// Deliberate violation: apply only half of what the oracle was
			// told. MGSP commits the half-write atomically, so recovery
			// preserves a state the op history cannot explain.
			img = img[:r.cfg.RegionSize/2]
		}
		if _, err := h.WriteAt(ctx, img, off); err != nil {
			st.noteErr(fmt.Errorf("writer %d op %d write: %w", w, i, err))
			return
		}
		st.sched.End(e.span, ops())
		if r.cfg.Flusher && o.regions[0] == r.cfg.privateRegion(w) {
			r.lastPriv[w] = stamp(w, i, o.regions[0])
		}

	case opMulti:
		e := st.beginOp(w, i, o, ops())
		updates := make([]core.Update, len(o.regions))
		for k, reg := range o.regions {
			updates[k] = core.Update{
				Off:  int64(reg) * r.cfg.RegionSize,
				Data: stampImage(w, i, reg, r.cfg.RegionSize),
			}
		}
		mw, ok := h.(multiWriter)
		if !ok {
			st.noteErr(fmt.Errorf("handle does not support WriteMulti"))
			return
		}
		if err := mw.WriteMulti(ctx, updates); err != nil {
			st.noteErr(fmt.Errorf("writer %d op %d writev: %w", w, i, err))
			return
		}
		st.sched.End(e.span, ops())

	case opSnap:
		if !st.snapBudget() {
			return
		}
		sp := st.sched.Begin(w, i, o.kind.String(), ops())
		id, err := r.fs.Snapshot(ctx, fileName)
		if err != nil {
			st.noteErr(fmt.Errorf("writer %d op %d snapshot: %w", w, i, err))
			return
		}
		sr := st.addSnap(id, sp)
		// Capture the frozen image now: it is stable by construction, and
		// the post-crash check compares against this capture. If the crash
		// interrupts the capture the snapshot stays unverifiable (content-
		// wise) but its existence is still checked.
		sh, err := r.fs.OpenSnapshot(ctx, fileName, id)
		if err != nil {
			st.noteErr(fmt.Errorf("writer %d op %d open snapshot %d: %w", w, i, id, err))
			return
		}
		img := make([]byte, sh.Size())
		if _, err := sh.ReadAt(ctx, img, 0); err != nil {
			st.noteErr(fmt.Errorf("writer %d op %d read snapshot %d: %w", w, i, id, err))
			return
		}
		sh.Close(ctx)
		st.completeSnap(sr, img)
		st.sched.End(sp, ops())

	case opRead:
		reg := o.regions[0]
		sp := st.sched.Begin(w, i, o.kind.String(), ops())
		buf := make([]byte, r.cfg.RegionSize)
		if _, err := h.ReadAt(ctx, buf, int64(reg)*r.cfg.RegionSize); err != nil {
			st.noteErr(fmt.Errorf("writer %d op %d read: %w", w, i, err))
			return
		}
		st.sched.End(sp, ops())
		// Live read oracle. Region writes commit atomically with respect to
		// readers (node locks on the media path, the seqlock on the frame
		// path), so a read must return one whole op image — mixed stamps mean
		// a torn frame copy.
		first := getLE64(buf)
		for off := 8; off+8 <= len(buf); off += 8 {
			if v := getLE64(buf[off:]); v != first {
				st.noteVio("read-torn", reg, fmt.Sprintf(
					"writer %d op %d read a torn region: word[0]=%#x word[%d]=%#x",
					w, i, first, off/8, v))
				return
			}
		}
		switch {
		case reg > r.cfg.Regions:
			// Private region: only this writer touches it, and the read is
			// program-ordered after the write, so acked content must be
			// visible — whether it sits in a dirty frame or already drained.
			if want := r.lastPriv[w]; first != want {
				st.noteVio("read-your-writes", reg, fmt.Sprintf(
					"writer %d op %d read stamp %#x from its private region, want %#x",
					w, i, first, want))
			}
		case first != 0:
			// Shared region: any committed stamp is fine, but it must be a
			// well-formed stamp addressed to this region — anything else is a
			// misdirected or half-patched frame.
			if first>>56 != 0xA5 || first&0xFF != 0x5A || int(first>>8&0xFFFF) != reg {
				st.noteVio("read-misdirected", reg, fmt.Sprintf(
					"writer %d op %d read stamp %#x not addressed to region %d",
					w, i, first, reg))
			}
		}

	case opDrop:
		sr := st.claimDropVictim()
		if sr == nil {
			return
		}
		sp := st.sched.Begin(w, i, o.kind.String(), ops())
		err := r.fs.DropSnapshot(ctx, fileName, sr.id)
		switch {
		case err == nil:
			st.finishDrop(sr, true)
		case err == core.ErrSnapshotBusy:
			st.finishDrop(sr, false) // concurrent capture holds it; retryable
		default:
			st.noteErr(fmt.Errorf("writer %d op %d drop snapshot %d: %w", w, i, sr.id, err))
			return
		}
		st.sched.End(sp, ops())
	}
}
