package torture

// Crash-during-serving mode: instead of driving core handles directly, N
// clients push stamped region writes through a live server.Server (protocol
// framing, per-request handlers, the shard's group-commit batcher) while the
// shard's media is armed to tear mid-batch. After the crash the harness
// remounts the shard device and checks the acked-vs-unacked oracle:
//
//   - an acknowledged write must survive recovery (acks are sent only after
//     the group commit's WriteMulti returned, so a lost acked write means
//     the batcher acked before the metadata log was durable);
//   - a group-commit batch must not be half-applied (WriteMulti promises
//     all-or-nothing for the writes it coalesced, even across the crash).
//
// Batch membership comes from server.Config.CommitHook: the server reports
// every attempted WriteMulti with the first data word of each member, which
// is exactly the stamp the region would hold if that member landed.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"mgsp/internal/core"
	"mgsp/internal/server"
	"mgsp/internal/server/client"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// ServerConfig parametrizes one crash-during-serving run.
type ServerConfig struct {
	Clients    int   // concurrent client connections (default 4)
	Ops        int   // region writes per client (default 16)
	Regions    int   // shared-file regions (default 16)
	RegionSize int64 // bytes per region, multiple of 8 (default 512)
	Seed       int64 // workload + tear PRNG seed
	// CrashAt arms the shard device to tear the CrashAt-th media operation
	// issued after the clients are connected (so setup I/O never crashes).
	// 0 runs to a clean shutdown instead.
	CrashAt   int64
	DevSize   int64         // shard device size (default 8 MiB)
	BatchWait time.Duration // group-commit linger (default 200µs)
}

func (cfg ServerConfig) withDefaults() ServerConfig {
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.Ops == 0 {
		cfg.Ops = 16
	}
	if cfg.Regions == 0 {
		cfg.Regions = 16
	}
	if cfg.RegionSize == 0 {
		cfg.RegionSize = 512
	}
	if cfg.DevSize == 0 {
		cfg.DevSize = 8 << 20
	}
	if cfg.BatchWait == 0 {
		cfg.BatchWait = 200 * time.Microsecond
	}
	return cfg
}

func (cfg ServerConfig) check() error {
	if cfg.RegionSize%8 != 0 {
		return fmt.Errorf("torture: RegionSize %d not a multiple of 8", cfg.RegionSize)
	}
	if cfg.Clients > 0xFFFF || cfg.Ops > 0xFFFF || cfg.Regions > 0xFFFF {
		return fmt.Errorf("torture: Clients/Ops/Regions must fit the stamp's 16-bit fields")
	}
	return nil
}

func (cfg ServerConfig) reproLine() string {
	return fmt.Sprintf(
		"go test ./internal/torture -run 'TestServerTortureSweep$' (clients=%d ops=%d regions=%d seed=%d crash=%d)",
		cfg.Clients, cfg.Ops, cfg.Regions, cfg.Seed, cfg.CrashAt)
}

// ServerResult summarizes one crash-during-serving run.
type ServerResult struct {
	Crashed    bool
	Issued     int   // writes sent by clients
	Acked      int   // writes acknowledged (WriteAt returned nil)
	Commits    int   // WriteMulti group commits reported by the hook
	MediaOps   int64 // media ops between arming point and shutdown
	Violations []Violation
	Trace      string // recovered FS flight-recorder dump, only on violations
}

func (res *ServerResult) violate(cfg ServerConfig, kind string, region int, detail string) {
	res.Violations = append(res.Violations, Violation{
		Kind:   kind,
		Region: region,
		Detail: detail,
		Repro:  cfg.reproLine(),
	})
}

// ackRec is one client write and whether its ack arrived.
type ackRec struct {
	w, i, r int
	acked   bool
}

// RunServer executes one crash-during-serving run and verifies the oracle.
func RunServer(cfg ServerConfig) (*ServerResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.check(); err != nil {
		return nil, err
	}
	res := &ServerResult{}

	var recMu sync.Mutex
	var records []server.CommitRecord
	srv, err := server.New(server.Config{
		Shards:    1,
		DevSize:   cfg.DevSize,
		Seed:      cfg.Seed,
		BatchWait: cfg.BatchWait,
		CommitHook: func(rec server.CommitRecord) {
			recMu.Lock()
			records = append(records, rec)
			recMu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}

	// Setup phase (never crashes): connect the clients and open the shared
	// file before arming the fail point.
	const tenant = "tort"
	files := make([]*client.File, cfg.Clients)
	conns := make([]*client.Client, cfg.Clients)
	for w := range files {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		c, err := client.New(cc, tenant)
		if err != nil {
			return nil, fmt.Errorf("torture: client %d hello: %w", w, err)
		}
		conns[w] = c
		if files[w], err = c.Open("f", true); err != nil {
			return nil, fmt.Errorf("torture: client %d open: %w", w, err)
		}
	}

	dev := srv.Device(0)
	armBase := dev.Stats().MediaOps.Load()
	if cfg.CrashAt > 0 {
		dev.ArmCrash(cfg.CrashAt, cfg.Seed*31+cfg.CrashAt)
	}

	// Serving phase: every client writes stamped regions until done or until
	// the crash poisons the server. The ack ledger is the oracle's input —
	// a write counts as acked only once WriteAt has returned nil.
	acks := make([][]ackRec, cfg.Clients)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*1099511628211))
			for i := 0; i < cfg.Ops; i++ {
				r := rng.Intn(cfg.Regions)
				img := stampImage(w, i, r, cfg.RegionSize)
				rec := ackRec{w: w, i: i, r: r}
				_, err := files[w].WriteAt(img, int64(r)*cfg.RegionSize)
				rec.acked = err == nil
				acks[w] = append(acks[w], rec)
				if err != nil {
					return // the crash (or shutdown) poisons everything after
				}
			}
		}(w)
	}
	wg.Wait()
	res.Crashed = dev.Crashed()
	if !res.Crashed {
		dev.DisarmCrash() // don't tear the clean shutdown's write-back
	}
	res.MediaOps = dev.Stats().MediaOps.Load() - armBase
	for _, c := range conns {
		c.Close()
	}
	if err := srv.Close(); err != nil && !errors.Is(err, server.ErrCrashed) {
		return nil, fmt.Errorf("torture: server close: %w", err)
	}
	for _, lst := range acks {
		for _, a := range lst {
			res.Issued++
			if a.acked {
				res.Acked++
			}
		}
	}

	// Remount the shard device the way a restarted mgspd would.
	if res.Crashed {
		dev.Recover()
	}
	rctx := sim.NewCtx(recoveryWorker, cfg.Seed)
	fs, err := core.Mount(rctx, dev, srv.FSOptions())
	if err != nil {
		res.violate(cfg, "mount", -1, fmt.Sprintf("recovery failed: %v", err))
		return res, nil
	}
	h, err := fs.Open(rctx, tenant+"/f")
	if err != nil {
		res.violate(cfg, "mount", -1, fmt.Sprintf("open after recovery: %v", err))
		return res, nil
	}
	defer h.Close(rctx)

	recMu.Lock()
	recs := records
	recMu.Unlock()
	verifyServed(cfg, res, recs, acks, func(r int) (uint64, bool) {
		return readRegion(rctx, h, cfg, r)
	})
	res.captureTraceFS(fs)
	return res, nil
}

// readRegion reads region r from the recovered file and folds it to a single
// stamp, reporting uniform=false if the region's 8-byte words disagree (a
// torn region). Bytes past EOF read as the initial zeros.
func readRegion(ctx *sim.Ctx, h vfs.File, cfg ServerConfig, r int) (uint64, bool) {
	buf := make([]byte, cfg.RegionSize)
	off := int64(r) * cfg.RegionSize
	if off < h.Size() {
		n := cfg.RegionSize
		if remain := h.Size() - off; remain < n {
			n = remain
		}
		if _, err := h.ReadAt(ctx, buf[:n], off); err != nil {
			return 0, false
		}
	}
	got := getLE64(buf)
	for o := int64(8); o < cfg.RegionSize; o += 8 {
		if getLE64(buf[o:]) != got {
			return 0, false
		}
	}
	return got, true
}

// verifyServed checks the acked-vs-unacked oracle against the recovered
// region contents. read returns region r's folded stamp and whether the
// region was uniform.
func verifyServed(cfg ServerConfig, res *ServerResult, records []server.CommitRecord,
	acks [][]ackRec, read func(r int) (uint64, bool)) {

	regionOf := func(op server.CommitOp) int { return int(op.Off / cfg.RegionSize) }

	// Replay the hook's total order (one shard, one batcher) to find what
	// each region must hold. lastDurable is the newest successfully
	// committed stamp; the first failed record is the WriteMulti the crash
	// interrupted — its members may or may not have landed, but atomically.
	lastDurable := make([]uint64, cfg.Regions) // 0 = initial zeros
	var inflight *server.CommitRecord
	for k := range records {
		rec := &records[k]
		if rec.Err == nil {
			res.Commits++
			for _, op := range rec.Ops {
				if op.Len != int(cfg.RegionSize) || op.Off%cfg.RegionSize != 0 {
					res.violate(cfg, "server-batch", regionOf(op),
						fmt.Sprintf("commit op off=%d len=%d not region-shaped", op.Off, op.Len))
					return
				}
				lastDurable[regionOf(op)] = op.Head
			}
			continue
		}
		if inflight == nil && errors.Is(rec.Err, server.ErrCrashed) {
			inflight = rec // first failure is the attempted, torn WriteMulti
		}
		// Later failed records were rejected before touching media; their
		// stamps must not appear anywhere (checked against expected below).
	}

	// An ack may only be sent for a write that appears in a successful
	// group commit — an ack without a durable commit is the bug the paper's
	// metadata-log flush ordering exists to prevent.
	committed := map[uint64]bool{}
	for _, rec := range records {
		if rec.Err == nil {
			for _, op := range rec.Ops {
				committed[op.Head] = true
			}
		}
	}
	for _, lst := range acks {
		for _, a := range lst {
			if a.acked && !committed[stamp(a.w, a.i, a.r)] {
				res.violate(cfg, "ack-without-commit", a.r,
					fmt.Sprintf("w%d/#%d->r%d acked but in no successful group commit", a.w, a.i, a.r))
			}
		}
	}

	// The in-flight batch must be all-or-nothing: every member's region
	// holds its stamp, or none does.
	inflightHead := make(map[int]uint64)
	if inflight != nil {
		applied, missing := 0, 0
		for _, op := range inflight.Ops {
			r := regionOf(op)
			inflightHead[r] = op.Head
			got, uniform := read(r)
			if uniform && got == op.Head {
				applied++
			} else {
				missing++
			}
		}
		if applied > 0 && missing > 0 {
			res.violate(cfg, "server-batch-torn", -1, fmt.Sprintf(
				"crashed WriteMulti half-applied: %d of %d members present",
				applied, applied+missing))
		}
	}

	// Per-region: uniform, and exactly the last durable stamp — or the
	// in-flight batch's member if the torn WriteMulti covered this region
	// and happened to land.
	for r := 0; r < cfg.Regions; r++ {
		got, uniform := read(r)
		if !uniform {
			res.violate(cfg, "torn-region", r, "region words disagree after recovery")
			continue
		}
		if got == lastDurable[r] {
			continue
		}
		if h, ok := inflightHead[r]; ok && got == h {
			continue
		}
		res.violate(cfg, "acked-lost", r, fmt.Sprintf(
			"region holds %#x, want %#x (last durable commit)%s",
			got, lastDurable[r], describeInflight(inflightHead, r)))
	}
}

func describeInflight(inflightHead map[int]uint64, r int) string {
	if h, ok := inflightHead[r]; ok {
		return fmt.Sprintf(" or %#x (in-flight batch)", h)
	}
	return ""
}

// captureTraceFS mirrors Result.captureTrace for the server-mode result:
// when the oracle failed, dump the recovered FS's flight recorder so the
// forensics include what recovery itself did.
func (res *ServerResult) captureTraceFS(fs *core.FS) {
	if len(res.Violations) == 0 || fs.TraceRing() == nil {
		return
	}
	var b strings.Builder
	if err := fs.TraceRing().Format(&b); err != nil {
		return
	}
	res.Trace = b.String()
}
