package torture

import (
	"fmt"
	"math/rand"
)

// SweepResult aggregates a crash-index sweep for one base configuration.
type SweepResult struct {
	Samples    int   // crash runs executed (completion run not counted)
	Crashed    int   // runs that actually hit the fail point
	Completed  int   // runs whose crash index landed past the workload
	TotalOps   int64 // media ops of the completion run (the sampling range)
	Violations []Violation
}

// Sweep torture-tests one configuration at `samples` crash indices drawn
// uniformly from the run's media-op range. Sample 0 is always a completion
// run: it measures the total media-op count that bounds the sampling range,
// and it verifies the oracle on the quiescent end state — which is also the
// deterministic catch point for Config.InjectTorn, whose violation does not
// depend on where the crash lands.
func Sweep(cfg Config, samples int, sweepSeed int64) (*SweepResult, error) {
	base := cfg
	base.CrashAt = 0
	r0, err := Run(base)
	if err != nil {
		return nil, fmt.Errorf("torture: completion run: %w", err)
	}
	res := &SweepResult{TotalOps: r0.MediaOps}
	res.Violations = append(res.Violations, r0.Violations...)
	if r0.MediaOps < 1 {
		return nil, fmt.Errorf("torture: completion run issued no media ops")
	}

	rng := rand.New(rand.NewSource(sweepSeed))
	for s := 0; s < samples; s++ {
		c := cfg
		c.CrashAt = 1 + rng.Int63n(r0.MediaOps)
		r, err := Run(c)
		if err != nil {
			return res, fmt.Errorf("torture: crash run (seed=%d crash=%d): %w", c.Seed, c.CrashAt, err)
		}
		res.Samples++
		if r.Crashed {
			res.Crashed++
		} else {
			res.Completed++
		}
		res.Violations = append(res.Violations, r.Violations...)
	}
	return res, nil
}

// ServerSweep is the crash-during-serving analogue of Sweep: one completion
// run measures the serving phase's media-op range (and proves the clean
// shutdown path mounts back), then `samples` runs crash at uniformly drawn
// indices and each verifies the acked-vs-unacked oracle. The server path is
// wall-clock concurrent, so unlike serial torture the sampled index is not a
// bit-identical reproducer — the per-run ack ledger and commit hook make the
// oracle exact anyway.
func ServerSweep(cfg ServerConfig, samples int, sweepSeed int64) (*SweepResult, error) {
	base := cfg
	base.CrashAt = 0
	r0, err := RunServer(base)
	if err != nil {
		return nil, fmt.Errorf("torture: server completion run: %w", err)
	}
	res := &SweepResult{TotalOps: r0.MediaOps}
	res.Violations = append(res.Violations, r0.Violations...)
	if r0.MediaOps < 1 {
		return nil, fmt.Errorf("torture: server completion run issued no media ops")
	}

	rng := rand.New(rand.NewSource(sweepSeed))
	for s := 0; s < samples; s++ {
		c := cfg
		c.Seed = cfg.Seed + int64(s)*613
		c.CrashAt = 1 + rng.Int63n(r0.MediaOps)
		r, err := RunServer(c)
		if err != nil {
			return res, fmt.Errorf("torture: server crash run (seed=%d crash=%d): %w", c.Seed, c.CrashAt, err)
		}
		res.Samples++
		if r.Crashed {
			res.Crashed++
		} else {
			res.Completed++
		}
		res.Violations = append(res.Violations, r.Violations...)
	}
	return res, nil
}

// Replay re-executes one (seed, writers, ops, crash, torn, flusher) point in
// serial mode. Serial runs are bit-identical functions of these parameters:
// the same media ops happen in the same order — background drains included,
// since the flusher runs on donated foreground goroutines — the device tears
// the same 8 bytes, and the oracle reaches the same verdict, which is what
// makes a Violation.Repro line a real reproducer.
func Replay(seed int64, writers, ops int, crashAt int64, injectTorn, flusher bool) (*Result, error) {
	return Run(Config{
		Writers:    writers,
		Ops:        ops,
		Seed:       seed,
		CrashAt:    crashAt,
		InjectTorn: injectTorn,
		Flusher:    flusher,
		Serial:     true,
	})
}
