package torture

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mgsp/internal/core"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// maxSnaps bounds the snapshots one run creates, so pin slots and the
// metadata log never fill up regardless of the sampled trace mix.
const maxSnaps = 8

// opRec is the oracle's record of one write-class op: the regions it
// covers, the stamp it put in each, and its schedule span.
type opRec struct {
	w, i    int
	kind    opKind
	regions []int
	span    *sim.Span
}

// snapRec tracks one snapshot through its lifecycle. Snapshot() returning
// means the snapshot is durably committed; complete means the harness also
// finished capturing the frozen image (the content reference).
type snapRec struct {
	id       core.SnapID
	span     *sim.Span
	img      []byte
	complete bool
	dropping bool
	dropped  bool
}

// state is the shared oracle state. Every mutation is ordered against the
// op it describes: write-class ops register (Begin + region history) before
// the first device access, so an op that crashed mid-flight is always known
// to the oracle.
type state struct {
	mu       sync.Mutex
	sched    *sim.Schedule
	byRegion [][]*opRec
	snaps    []*snapRec
	created  int
	errs     []error
	vios     []liveVio
}

// liveVio is a violation detected while the workload is still running — the
// flusher-mode read oracle (torn frame copies, read-your-writes misses).
// Run folds them into Result.Violations with the usual repro line.
type liveVio struct {
	kind   string
	region int
	detail string
}

func newState(cfg Config) *state {
	return &state{
		sched:    sim.NewSchedule(),
		byRegion: make([][]*opRec, cfg.totalRegions()),
	}
}

func (st *state) beginOp(w, i int, o op, mediaOp int64) *opRec {
	e := &opRec{w: w, i: i, kind: o.kind, regions: o.regions}
	st.mu.Lock()
	e.span = st.sched.Begin(w, i, o.kind.String(), mediaOp)
	for _, r := range o.regions {
		st.byRegion[r] = append(st.byRegion[r], e)
	}
	st.mu.Unlock()
	return e
}

func (st *state) noteErr(err error) {
	st.mu.Lock()
	st.errs = append(st.errs, err)
	st.mu.Unlock()
}

func (st *state) takeErrs() []error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.errs
}

func (st *state) noteVio(kind string, region int, detail string) {
	st.mu.Lock()
	st.vios = append(st.vios, liveVio{kind: kind, region: region, detail: detail})
	st.mu.Unlock()
}

func (st *state) takeVios() []liveVio {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.vios
}

// snapBudget admits one more Snapshot call if the run is under maxSnaps.
func (st *state) snapBudget() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.created >= maxSnaps {
		return false
	}
	st.created++
	return true
}

func (st *state) addSnap(id core.SnapID, sp *sim.Span) *snapRec {
	sr := &snapRec{id: id, span: sp}
	st.mu.Lock()
	st.snaps = append(st.snaps, sr)
	st.mu.Unlock()
	return sr
}

func (st *state) completeSnap(sr *snapRec, img []byte) {
	st.mu.Lock()
	sr.img = img
	sr.complete = true
	st.mu.Unlock()
}

// claimDropVictim picks a snapshot whose capture finished (so its read
// handle is closed) and that nobody else is dropping. The claim is
// exclusive; finishDrop(sr, false) reverts it.
func (st *state) claimDropVictim() *snapRec {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sr := range st.snaps {
		if sr.complete && !sr.dropping && !sr.dropped {
			sr.dropping = true
			return sr
		}
	}
	return nil
}

func (st *state) finishDrop(sr *snapRec, done bool) {
	st.mu.Lock()
	if done {
		sr.dropped = true
	} else {
		sr.dropping = false
	}
	st.mu.Unlock()
}

// Violation is one oracle failure. Repro is a shell line that replays the
// run bit-identically in serial mode.
type Violation struct {
	Kind   string
	Region int
	Detail string
	Repro  string
}

func (v Violation) String() string {
	s := fmt.Sprintf("torture violation [%s]", v.Kind)
	if v.Region >= 0 {
		s += fmt.Sprintf(" region %d", v.Region)
	}
	return s + ": " + v.Detail + "\n  repro: " + v.Repro
}

// Result summarizes one torture run.
type Result struct {
	Crashed      bool
	CrashOp      int64 // device-lifetime index of the torn media op (-1 if none)
	CrashWorker  int   // sim.Ctx id that hit the fail point (-1 if none)
	MediaOps     int64
	OpsStarted   int
	OpsCompleted int
	WorkerOps    map[int]int64
	Violations   []Violation
	Schedule     *sim.Schedule
	// Trace is the verified file system's flight-recorder dump (internal/obs
	// trace ring), captured only when the oracle found violations: the last
	// ops — including recovery itself after a crash — that led to the bad
	// state, for forensics alongside the schedule.
	Trace string
}

// captureTrace dumps the verified file system's trace ring into the result,
// but only when the oracle failed — a clean run keeps the result small.
func (res *Result) captureTrace(fs *core.FS) {
	if len(res.Violations) == 0 || fs.TraceRing() == nil {
		return
	}
	var b strings.Builder
	if err := fs.TraceRing().Format(&b); err != nil {
		return
	}
	res.Trace = b.String()
}

func (res *Result) addViolation(cfg Config, kind string, region int, detail string) {
	res.Violations = append(res.Violations, Violation{
		Kind:   kind,
		Region: region,
		Detail: detail,
		Repro:  cfg.ReproLine(),
	})
}

// ReproLine is the deterministic replay command for this configuration: it
// reruns the same traces in serial mode, where the media-op stream — and
// therefore the crash placement and the 8-byte tear — is a pure function of
// these flags.
func (cfg Config) ReproLine() string {
	return fmt.Sprintf(
		"go test ./internal/torture -run 'TestTortureReplay$' -torture.seed=%d -torture.writers=%d -torture.ops=%d -torture.crash=%d -torture.torn=%t -torture.flusher=%t",
		cfg.Seed, cfg.Writers, cfg.Ops, cfg.CrashAt, cfg.InjectTorn, cfg.Flusher)
}

// stampTable maps every stamp a run can produce back to its op, for torn-
// region diagnostics.
func stampTable(cfg Config, tr [][]op) map[uint64]string {
	m := map[uint64]string{0: "initial zeros"}
	for w, ops := range tr {
		for i, o := range ops {
			for _, r := range o.regions {
				m[stamp(w, i, r)] = fmt.Sprintf("w%d/%s#%d->r%d", w, o.kind, i, r)
			}
		}
	}
	return m
}

// verify runs the full oracle against fs/h, which are either the recovered
// mount after a crash or the live quiescent system after completion. Every
// failure is appended to res.Violations.
func (st *state) verify(cfg Config, res *Result, ctx *sim.Ctx, fs *core.FS, h vfs.File) {
	tr := traces(cfg)
	names := stampTable(cfg, tr)
	img := make([]byte, cfg.fileSize())
	if _, err := h.ReadAt(ctx, img, 0); err != nil {
		res.addViolation(cfg, "read", -1, fmt.Sprintf("reading recovered image: %v", err))
		return
	}

	// A crashed write-back run weakens per-region admissibility: a WriteAt
	// can return with its data only in a DRAM frame, so the crash legally
	// erases acked-but-undrained writes. The recovered region may then show
	// any earlier registered op (media holds whatever the last drain or
	// direct commit landed), or the initial zeros (nothing ever drained).
	// Completed-run verification, WriteMulti atomicity, and the snapshot
	// checks stay strict — and the in-run read oracle (read-your-writes on
	// private regions) polices the window the relaxation opens.
	relaxed := res.Crashed && cfg.Opts.WriteBack

	// Per-region op-atomicity: the region must hold the stamp of exactly one
	// admissible op (or the initial zeros when no op committed to it).
	matched := make([]*opRec, cfg.totalRegions())
	for r := 0; r < cfg.totalRegions(); r++ {
		recs := st.byRegion[r]
		// A completed op is superseded — impossible to observe — once some
		// other completed op on the region started strictly after it
		// returned. In-flight ops (crash-interrupted) supersede nothing and
		// are always admissible: their commit may or may not have landed.
		var cands [][]byte
		var candOps []*opRec
		anyCompleted := false
		for _, e := range recs {
			if !e.span.InFlight() {
				anyCompleted = true
			}
		}
		if !anyCompleted || relaxed {
			cands = append(cands, make([]byte, cfg.RegionSize))
			candOps = append(candOps, nil)
		}
		for _, e := range recs {
			superseded := false
			if !relaxed && !e.span.InFlight() {
				for _, o := range recs {
					if o != e && !o.span.InFlight() && e.span.Before(o.span) {
						superseded = true
						break
					}
				}
			}
			if superseded {
				continue
			}
			cands = append(cands, stampImage(e.w, e.i, r, cfg.RegionSize))
			candOps = append(candOps, e)
		}
		got := img[int64(r)*cfg.RegionSize : int64(r+1)*cfg.RegionSize]
		k := core.MatchCandidate(got, cands)
		if k == -1 {
			res.addViolation(cfg, "torn-region", r, describeRegion(got, cands, names))
			continue
		}
		matched[r] = candOps[k]
	}

	// WriteMulti atomicity across regions: once one region of a multi-op is
	// visible, its whole metadata-log chain committed, so no other region of
	// that op may still show a state from definitely before it.
	st.checkMulti(cfg, res, matched)

	st.checkSnapshots(cfg, res, ctx, fs)

	// Every listed snapshot has been dropped above, so the allocator must
	// account for exactly the live tree now.
	if rep := fs.AuditBlocks(); !rep.Clean() {
		res.addViolation(cfg, "audit", -1,
			fmt.Sprintf("block audit after recovery: %d orphans, %d unallocated",
				len(rep.Orphans), len(rep.Unallocated)))
	}
}

func (st *state) checkMulti(cfg Config, res *Result, matched []*opRec) {
	for r, m := range matched {
		if m == nil || m.kind != opMulti {
			continue
		}
		for _, q := range m.regions {
			if q == r {
				continue
			}
			other := matched[q]
			switch {
			case other == m:
			case other == nil:
				// Initial zeros predate every op, including m.
				res.addViolation(cfg, "multi-torn", q, fmt.Sprintf(
					"writev w%d#%d visible in region %d but region %d still shows initial zeros",
					m.w, m.i, r, q))
			case other.span.Before(m.span):
				res.addViolation(cfg, "multi-torn", q, fmt.Sprintf(
					"writev w%d#%d visible in region %d but region %d shows w%d/%s#%d, which completed before it started",
					m.w, m.i, r, q, other.w, other.kind, other.i))
			}
		}
	}
}

// checkSnapshots validates the snapshot table and every frozen image, then
// drops all listed snapshots so the block audit runs on the bare tree.
func (st *state) checkSnapshots(cfg Config, res *Result, ctx *sim.Ctx, fs *core.FS) {
	infos, err := fs.Snapshots(ctx, fileName)
	if err != nil {
		res.addViolation(cfg, "snap", -1, fmt.Sprintf("listing snapshots: %v", err))
		return
	}
	listed := make(map[core.SnapID]core.SnapInfo, len(infos))
	for _, info := range infos {
		listed[info.ID] = info
	}
	known := make(map[core.SnapID]bool, len(st.snaps))
	for _, sr := range st.snaps {
		known[sr.id] = true
		info, live := listed[sr.id]
		switch {
		case !sr.dropping && !live:
			// Snapshot() returned, so the create entry was durably committed.
			res.addViolation(cfg, "snap-lost", -1,
				fmt.Sprintf("committed snapshot %d not listed after recovery", sr.id))
			continue
		case sr.dropped && live:
			res.addViolation(cfg, "snap-resurrected", -1,
				fmt.Sprintf("dropped snapshot %d listed after recovery", sr.id))
		}
		if !live || !sr.complete {
			// In-flight drops may resolve either way; crash-interrupted
			// captures leave no content reference. Existence rules above
			// still applied.
			continue
		}
		if info.Size != int64(len(sr.img)) {
			res.addViolation(cfg, "snap-torn", -1, fmt.Sprintf(
				"snapshot %d frozen size %d, want %d", sr.id, info.Size, len(sr.img)))
			continue
		}
		sh, err := fs.OpenSnapshot(ctx, fileName, sr.id)
		if err != nil {
			res.addViolation(cfg, "snap", -1, fmt.Sprintf("open snapshot %d: %v", sr.id, err))
			continue
		}
		frozen := make([]byte, info.Size)
		_, err = sh.ReadAt(ctx, frozen, 0)
		sh.Close(ctx)
		if err != nil {
			res.addViolation(cfg, "snap", -1, fmt.Sprintf("read snapshot %d: %v", sr.id, err))
			continue
		}
		if i := core.FirstDivergence(frozen, sr.img); i != -1 {
			res.addViolation(cfg, "snap-torn", -1, fmt.Sprintf(
				"snapshot %d diverges from its frozen image at byte %d: %#x want %#x",
				sr.id, i, frozen[i], sr.img[i]))
		}
	}
	for id := range listed {
		if !known[id] {
			// Created in flight at the crash: the commit raced the tear and
			// won. Legal — but it must at least open and read cleanly.
			sh, err := fs.OpenSnapshot(ctx, fileName, id)
			if err != nil {
				res.addViolation(cfg, "snap", -1,
					fmt.Sprintf("open in-flight-created snapshot %d: %v", id, err))
				continue
			}
			buf := make([]byte, sh.Size())
			_, err = sh.ReadAt(ctx, buf, 0)
			sh.Close(ctx)
			if err != nil {
				res.addViolation(cfg, "snap", -1,
					fmt.Sprintf("read in-flight-created snapshot %d: %v", id, err))
			}
		}
	}
	// Clear the table for the audit; quiescent now, so Busy is impossible.
	for id := range listed {
		if err := fs.DropSnapshot(ctx, fileName, id); err != nil {
			res.addViolation(cfg, "snap", -1, fmt.Sprintf("drop snapshot %d: %v", id, err))
		}
	}
}

// describeRegion renders a torn region word-by-word: which stamps appear,
// where the content first diverges from each candidate.
func describeRegion(got []byte, cands [][]byte, names map[uint64]string) string {
	seen := map[uint64]int{}
	var order []uint64
	for off := 0; off+8 <= len(got); off += 8 {
		v := getLE64(got[off:])
		if seen[v] == 0 {
			order = append(order, v)
		}
		seen[v]++
	}
	sort.Slice(order, func(i, j int) bool { return seen[order[i]] > seen[order[j]] })
	var b strings.Builder
	fmt.Fprintf(&b, "region matches none of %d candidate op images; words found:", len(cands))
	for _, v := range order {
		name := names[v]
		if name == "" {
			name = "UNKNOWN"
		}
		fmt.Fprintf(&b, " %s×%d", name, seen[v])
	}
	for k, c := range cands {
		fmt.Fprintf(&b, "; cand[%d] diverges at byte %d", k, core.FirstDivergence(got, c))
	}
	return b.String()
}
