package torture

import (
	"fmt"
	"testing"
)

func failServerViolations(t *testing.T, vs []Violation, trace string) {
	t.Helper()
	for _, v := range vs {
		t.Errorf("%s", v)
	}
	if t.Failed() && trace != "" {
		t.Logf("flight recorder:\n%s", trace)
	}
}

// TestServerTortureCompletion proves the no-crash baseline: every write is
// acked, the clean shutdown's image mounts back, and the oracle agrees with
// the commit hook about what every region holds.
func TestServerTortureCompletion(t *testing.T) {
	res, err := RunServer(ServerConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("completion run crashed")
	}
	if res.Acked != res.Issued || res.Issued == 0 {
		t.Fatalf("acked %d of %d issued writes; want all", res.Acked, res.Issued)
	}
	if res.Commits == 0 {
		t.Fatal("commit hook saw no group commits")
	}
	if res.Commits >= res.Acked {
		t.Errorf("no coalescing: %d commits for %d acked writes", res.Commits, res.Acked)
	}
	t.Logf("issued=%d acked=%d commits=%d mediaOps=%d", res.Issued, res.Acked, res.Commits, res.MediaOps)
	failServerViolations(t, res.Violations, res.Trace)
}

// TestServerTortureSweep is ISSUE 6's acceptance gate: ~200 sampled
// (seed, crash-index) points of clients writing through the live server
// loop, the media torn mid-batch, and the acked-vs-unacked oracle verified
// after each remount. -short trims the sample count for quick iteration.
func TestServerTortureSweep(t *testing.T) {
	const shards = 4
	perShard := 50 // 4 x 50 = 200 sampled points
	if testing.Short() {
		perShard = 10
	}
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			cfg := ServerConfig{Seed: int64(s)*7919 + 1}
			res, err := ServerSweep(cfg, perShard, int64(s)*99991+29)
			if err != nil {
				t.Fatal(err)
			}
			if res.Samples != perShard {
				t.Fatalf("ran %d samples, want %d", res.Samples, perShard)
			}
			if res.Crashed == 0 {
				t.Fatalf("no sampled crash index hit the fail point (range %d)", res.TotalOps)
			}
			t.Logf("media-op range %d: %d crashed, %d completed past the workload",
				res.TotalOps, res.Crashed, res.Completed)
			failServerViolations(t, res.Violations, "")
		})
	}
}

// TestServerTortureCrashPoint pins one early crash index and checks the
// bookkeeping a crashed run must report: the device crashed, not every
// issued write was acked, and the oracle is still clean.
func TestServerTortureCrashPoint(t *testing.T) {
	res, err := RunServer(ServerConfig{Seed: 5, CrashAt: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatalf("crash at media op 40 did not fire (mediaOps=%d)", res.MediaOps)
	}
	if res.Acked >= res.Issued {
		t.Errorf("crashed run acked all %d issued writes; expected losses", res.Issued)
	}
	failServerViolations(t, res.Violations, res.Trace)
}
