package torture

import (
	"flag"
	"fmt"
	"testing"
)

// Flags let a Violation.Repro line drive TestTortureReplay directly:
//
//	go test ./internal/torture -run 'TestTortureReplay$' -torture.seed=7 ...
var (
	replaySeed    = flag.Int64("torture.seed", 0, "replay: trace seed")
	replayWriters = flag.Int("torture.writers", 4, "replay: writer count")
	replayOps     = flag.Int("torture.ops", 25, "replay: ops per writer")
	replayCrash   = flag.Int64("torture.crash", 0, "replay: media-op crash index (0 = run to completion)")
	replayTorn    = flag.Bool("torture.torn", false, "replay: inject the deliberate torn write")
	replayFlusher = flag.Bool("torture.flusher", false, "replay: run with the write-back cache and flusher armed")
)

func failViolations(t *testing.T, res *Result) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
	if t.Failed() && res.Schedule != nil {
		t.Logf("schedule:\n%s", res.Schedule)
	}
	if t.Failed() && res.Trace != "" {
		t.Logf("flight recorder:\n%s", res.Trace)
	}
}

// TestTortureReplay executes exactly one serial run from the flags above.
// It is the target of every repro line: a violation found anywhere replays
// here bit-identically and fails the test with the same report.
func TestTortureReplay(t *testing.T) {
	res, err := Replay(*replaySeed, *replayWriters, *replayOps, *replayCrash, *replayTorn, *replayFlusher)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("crashed=%v crashOp=%d crashWorker=%d mediaOps=%d ops=%d/%d",
		res.Crashed, res.CrashOp, res.CrashWorker, res.MediaOps, res.OpsCompleted, res.OpsStarted)
	failViolations(t, res)
}

// TestTortureSweepConcurrent is the main gate: 4 seeds x 50 sampled crash
// indices (plus a completion run per seed), 4 real writer goroutines racing
// on the live lock paths, zero oracle violations allowed. Run it with -race.
func TestTortureSweepConcurrent(t *testing.T) {
	const (
		seeds   = 4
		samples = 50
	)
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Writers: 4, Seed: int64(s)}
			res, err := Sweep(cfg, samples, int64(s)*99991+17)
			if err != nil {
				t.Fatal(err)
			}
			if res.Samples != samples {
				t.Fatalf("ran %d samples, want %d", res.Samples, samples)
			}
			if res.Crashed == 0 {
				t.Fatalf("no sampled crash index hit the fail point (range %d)", res.TotalOps)
			}
			t.Logf("media-op range %d: %d crashed, %d completed past the workload",
				res.TotalOps, res.Crashed, res.Completed)
			for _, v := range res.Violations {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestTortureSweepManyCore is the many-core gate for the per-worker home
// areas: 8 and 16 racing writers (each with its own metadata-log home area
// and allocator shard), 100 sampled crash indices per width — 200 points
// total — with the full op-atomicity, snapshot, and allocator-audit oracle
// after every recovery. Recovery must stitch every worker's area: a missed
// area would surface here as a lost committed write.
func TestTortureSweepManyCore(t *testing.T) {
	const samples = 100
	for _, writers := range []int{8, 16} {
		writers := writers
		t.Run(fmt.Sprintf("writers=%d", writers), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Writers: writers, Seed: int64(writers) * 131}
			res, err := Sweep(cfg, samples, int64(writers)*99991+29)
			if err != nil {
				t.Fatal(err)
			}
			if res.Samples != samples {
				t.Fatalf("ran %d samples, want %d", res.Samples, samples)
			}
			if res.Crashed == 0 {
				t.Fatalf("no sampled crash index hit the fail point (range %d)", res.TotalOps)
			}
			t.Logf("media-op range %d: %d crashed, %d completed past the workload",
				res.TotalOps, res.Crashed, res.Completed)
			for _, v := range res.Violations {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestTortureSerialDeterministicManyCore extends the replay contract to 16
// writers: with per-worker home slots every writer appends through its own
// area cursor, and the serial schedule must still be a pure function of
// (seed, writers, crash) — same media-op stream, same crash placement, same
// schedule, run after run.
func TestTortureSerialDeterministicManyCore(t *testing.T) {
	run := func() *Result {
		res, err := Replay(77, 16, 25, 900, false, false)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Crashed || !b.Crashed {
		t.Fatalf("expected both runs to crash (a=%v b=%v); pick a smaller crash index", a.Crashed, b.Crashed)
	}
	if a.CrashOp != b.CrashOp || a.CrashWorker != b.CrashWorker || a.MediaOps != b.MediaOps {
		t.Fatalf("serial replay diverged: crashOp %d/%d, crashWorker %d/%d, mediaOps %d/%d",
			a.CrashOp, b.CrashOp, a.CrashWorker, b.CrashWorker, a.MediaOps, b.MediaOps)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatalf("serial replay schedules diverged:\n%s\nvs\n%s", a.Schedule, b.Schedule)
	}
	failViolations(t, a)
}

// TestTortureSweepSerial covers the deterministic mode's crash/remount path
// across sampled indices: same oracle, single goroutine, seeded round-robin
// interleaving.
func TestTortureSweepSerial(t *testing.T) {
	cfg := Config{Writers: 4, Seed: 11, Serial: true}
	res, err := Sweep(cfg, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed == 0 {
		t.Fatal("no sampled crash index hit the fail point")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestTortureSerialDeterministic proves the replay contract: two serial
// runs of the same (seed, writers, crash) parameters produce the same
// media-op stream, crash the same worker at the same device-lifetime op,
// and leave the same schedule.
func TestTortureSerialDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Replay(42, 4, 25, 300, false, false)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Crashed || !b.Crashed {
		t.Fatalf("expected both runs to crash (a=%v b=%v); pick a smaller crash index", a.Crashed, b.Crashed)
	}
	if a.CrashOp != b.CrashOp || a.CrashWorker != b.CrashWorker || a.MediaOps != b.MediaOps {
		t.Fatalf("serial replay diverged: crashOp %d/%d, crashWorker %d/%d, mediaOps %d/%d",
			a.CrashOp, b.CrashOp, a.CrashWorker, b.CrashWorker, a.MediaOps, b.MediaOps)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatalf("serial replay schedules diverged:\n%s\nvs\n%s", a.Schedule, b.Schedule)
	}
	failViolations(t, a)
}

// TestTortureCatchesInjectedTear proves the oracle is live: a deliberately
// torn write (half a region applied, whole region claimed) is detected, its
// violation carries a replayable repro line, and two replays of that line's
// parameters reproduce the identical report.
func TestTortureCatchesInjectedTear(t *testing.T) {
	res, err := Replay(5, 4, 25, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	var torn *Violation
	for i, v := range res.Violations {
		if v.Kind == "torn-region" {
			torn = &res.Violations[i]
			break
		}
	}
	if torn == nil {
		t.Fatalf("injected torn write not detected; violations: %v", res.Violations)
	}
	if torn.Region != 12 {
		t.Errorf("tear detected in region %d, want the reserved region 12", torn.Region)
	}
	if torn.Repro == "" {
		t.Fatal("violation carries no repro line")
	}
	t.Logf("caught: %s", torn)

	// The repro line replays bit-identically.
	again, err := Replay(5, 4, 25, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Violations) != len(res.Violations) {
		t.Fatalf("replay found %d violations, first run %d", len(again.Violations), len(res.Violations))
	}
	for i := range again.Violations {
		if again.Violations[i] != res.Violations[i] {
			t.Fatalf("replay violation %d differs:\n%s\nvs\n%s", i, again.Violations[i], res.Violations[i])
		}
	}
	if again.MediaOps != res.MediaOps {
		t.Fatalf("replay media-op stream differs: %d vs %d", again.MediaOps, res.MediaOps)
	}
}

// TestTortureConcurrentInjectedTear checks the concurrent path also catches
// the injection — the reserved region makes the violation independent of
// the Go scheduler's interleaving.
func TestTortureConcurrentInjectedTear(t *testing.T) {
	res, err := Run(Config{Writers: 4, Seed: 5, InjectTorn: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		if v.Kind == "torn-region" {
			t.Logf("caught: %s", v)
			return
		}
	}
	t.Fatalf("injected torn write not detected; violations: %v", res.Violations)
}

// TestTortureWorkerAttribution checks the per-writer media-op accounting
// the nvm layer exports: every writer that ran issued media ops, and the
// per-worker sum matches the device total.
func TestTortureWorkerAttribution(t *testing.T) {
	res, err := Run(Config{Writers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	failViolations(t, res)
	var sum int64
	for _, n := range res.WorkerOps {
		sum += n
	}
	if sum != res.MediaOps {
		t.Fatalf("per-worker ops sum %d != device total %d", sum, res.MediaOps)
	}
	for w := 0; w < 4; w++ {
		if res.WorkerOps[w] == 0 {
			t.Errorf("writer %d attributed no media ops", w)
		}
	}
}
