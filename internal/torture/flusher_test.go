package torture

import (
	"fmt"
	"testing"
)

// TestTortureFlusherSweepConcurrent is the flusher-active gate: 4 seeds x 50
// sampled crash indices (200 points, plus a completion run per seed) with the
// write-back cache armed — 4 writer goroutines issuing optimistic frame reads
// against buffered writes while the watermark-driven flusher drains dirty
// frames on donated goroutines, so crashes land mid-drain too. Zero
// violations allowed: no torn frame copy, no read-your-writes miss on the
// private regions, and recovery must explain every region without ever
// depending on cache state.
func TestTortureFlusherSweepConcurrent(t *testing.T) {
	const (
		seeds   = 4
		samples = 50
	)
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Writers: 4, Seed: int64(s), Flusher: true}
			res, err := Sweep(cfg, samples, int64(s)*99991+23)
			if err != nil {
				t.Fatal(err)
			}
			if res.Samples != samples {
				t.Fatalf("ran %d samples, want %d", res.Samples, samples)
			}
			if res.Crashed == 0 {
				t.Fatalf("no sampled crash index hit the fail point (range %d)", res.TotalOps)
			}
			t.Logf("media-op range %d: %d crashed, %d completed past the workload",
				res.TotalOps, res.Crashed, res.Completed)
			for _, v := range res.Violations {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestTortureFlusherSweepSerial covers the deterministic mode with the
// flusher armed: drains run on donated foreground goroutines, so the serial
// media-op stream — crash placement included — stays a pure function of the
// config and every flusher-mode repro line replays bit-identically.
func TestTortureFlusherSweepSerial(t *testing.T) {
	cfg := Config{Writers: 4, Seed: 13, Serial: true, Flusher: true}
	res, err := Sweep(cfg, 25, 19)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed == 0 {
		t.Fatal("no sampled crash index hit the fail point")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestTortureFlusherSerialDeterministic pins the replay contract for flusher
// mode: two serial runs of the same parameters produce the same media-op
// stream and schedule even though background drains interleave with the
// workload.
func TestTortureFlusherSerialDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Replay(21, 4, 25, 200, false, true)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Crashed || !b.Crashed {
		t.Fatalf("expected both runs to crash (a=%v b=%v); pick a smaller crash index", a.Crashed, b.Crashed)
	}
	if a.CrashOp != b.CrashOp || a.CrashWorker != b.CrashWorker || a.MediaOps != b.MediaOps {
		t.Fatalf("flusher serial replay diverged: crashOp %d/%d, crashWorker %d/%d, mediaOps %d/%d",
			a.CrashOp, b.CrashOp, a.CrashWorker, b.CrashWorker, a.MediaOps, b.MediaOps)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatalf("flusher serial replay schedules diverged:\n%s\nvs\n%s", a.Schedule, b.Schedule)
	}
	failViolations(t, a)
}

// TestTortureFlusherTracesRead proves the flusher-mode workload actually
// exercises the read oracle: the generated traces must contain reads and
// private-region writes for every writer, and a completion run must come back
// clean.
func TestTortureFlusherTracesRead(t *testing.T) {
	cfg := Config{Writers: 4, Seed: 2, Flusher: true}.withDefaults()
	tr := traces(cfg)
	for w, ops := range tr {
		reads, privWrites := 0, 0
		for _, o := range ops {
			switch {
			case o.kind == opRead:
				reads++
			case o.kind == opWrite && o.regions[0] == cfg.privateRegion(w):
				privWrites++
			}
		}
		if reads == 0 {
			t.Errorf("writer %d trace has no reads", w)
		}
		if privWrites == 0 {
			t.Errorf("writer %d trace has no private-region writes", w)
		}
	}
	res, err := Run(Config{Writers: 4, Seed: 2, Flusher: true})
	if err != nil {
		t.Fatal(err)
	}
	failViolations(t, res)
}
