package server

// writeOp is one client write queued for a shard's group-commit loop.
type writeOp struct {
	sf     *srvFile
	ten    *tenant
	off    int64
	data   []byte
	growth int64      // bytes reserved against the tenant quota at admission
	done   chan error // buffered(1); receives the commit outcome
}

func (op *writeOp) end() int64 { return op.off + int64(len(op.data)) }

func (op *writeOp) overlaps(other *writeOp) bool {
	return op.sf == other.sf && op.off < other.end() && other.off < op.end()
}

// planSubBatches splits a drained batch into sub-batches whose members are
// pairwise disjoint, because WriteMulti rejects overlapping updates (a
// multi-range atomic op has no defined order between its ranges).
//
// The rule is append-to-last-only: each op joins the newest sub-batch if it
// conflicts with none of its members, otherwise it opens a new one. Joining
// an OLDER sub-batch would be wrong even when disjoint from it — the op may
// conflict with something in between, and committing sub-batches in order
// is what preserves the client-visible per-offset write order. Overlapping
// ops are the rare case (clients hammering the same key back-to-back), so
// in the common case the whole batch is one sub-batch, one group commit.
func planSubBatches(ops []*writeOp) [][]*writeOp {
	var subs [][]*writeOp
	for _, op := range ops {
		placed := false
		if n := len(subs); n > 0 {
			last := subs[n-1]
			conflict := false
			for _, m := range last {
				if op.overlaps(m) {
					conflict = true
					break
				}
			}
			if !conflict {
				subs[n-1] = append(last, op)
				placed = true
			}
		}
		if !placed {
			subs = append(subs, []*writeOp{op})
		}
	}
	return subs
}

// fileRun is one WriteMulti call's worth of a sub-batch: the ops of a
// single file, in queue order.
type fileRun struct {
	sf  *srvFile
	ops []*writeOp
}

// splitByFile groups a sub-batch per file, preserving queue order inside
// each run. WriteMulti is a per-file operation, so a sub-batch touching k
// files commits as k group commits (each still one metadata-log flush for
// all its coalesced writes).
func splitByFile(sub []*writeOp) []fileRun {
	var runs []fileRun
	idx := make(map[*srvFile]int, 2)
	for _, op := range sub {
		if i, ok := idx[op.sf]; ok {
			runs[i].ops = append(runs[i].ops, op)
			continue
		}
		idx[op.sf] = len(runs)
		runs = append(runs, fileRun{sf: op.sf, ops: []*writeOp{op}})
	}
	return runs
}
