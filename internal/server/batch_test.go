package server

import "testing"

func op(sf *srvFile, off, n int64) *writeOp {
	return &writeOp{sf: sf, off: off, data: make([]byte, n)}
}

func TestPlanSubBatchesDisjointStaysWhole(t *testing.T) {
	f := &srvFile{}
	batch := []*writeOp{op(f, 0, 100), op(f, 100, 100), op(f, 4096, 512)}
	subs := planSubBatches(batch)
	if len(subs) != 1 || len(subs[0]) != 3 {
		t.Fatalf("disjoint batch split into %d sub-batches", len(subs))
	}
}

func TestPlanSubBatchesSplitsOverlap(t *testing.T) {
	f := &srvFile{}
	// Ops 0 and 2 overlap; op 1 is disjoint from everything.
	batch := []*writeOp{op(f, 0, 100), op(f, 4096, 100), op(f, 50, 100)}
	subs := planSubBatches(batch)
	if len(subs) != 2 {
		t.Fatalf("got %d sub-batches, want 2", len(subs))
	}
	if len(subs[0]) != 2 || subs[0][0].off != 0 || subs[0][1].off != 4096 {
		t.Fatalf("first sub-batch wrong: %+v", subs[0])
	}
	if len(subs[1]) != 1 || subs[1][0].off != 50 {
		t.Fatalf("second sub-batch wrong: %+v", subs[1])
	}
}

// A later op disjoint from the LAST sub-batch joins it even if it overlaps
// an earlier one — commit order makes that safe — but an op overlapping the
// last sub-batch always opens a new one, never back-fills an older one
// (that would commit it before a conflicting older op).
func TestPlanSubBatchesNeverBackfills(t *testing.T) {
	f := &srvFile{}
	batch := []*writeOp{
		op(f, 0, 100),  // sub 0
		op(f, 50, 100), // overlaps -> sub 1
		op(f, 20, 10),  // overlaps sub 1's [50,150)? no — but overlaps sub 0; must NOT join sub 0
	}
	subs := planSubBatches(batch)
	if len(subs) != 2 {
		t.Fatalf("got %d sub-batches, want 2", len(subs))
	}
	if len(subs[1]) != 2 || subs[1][1].off != 20 {
		t.Fatalf("op at 20 should ride sub-batch 1 (commits after sub 0): %+v", subs[1])
	}
}

func TestPlanSubBatchesDifferentFilesNeverConflict(t *testing.T) {
	a, b := &srvFile{}, &srvFile{}
	batch := []*writeOp{op(a, 0, 100), op(b, 0, 100), op(a, 4096, 100)}
	subs := planSubBatches(batch)
	if len(subs) != 1 {
		t.Fatalf("same offsets on different files split the batch: %d subs", len(subs))
	}
	runs := splitByFile(subs[0])
	if len(runs) != 2 {
		t.Fatalf("got %d file runs, want 2", len(runs))
	}
	if runs[0].sf != a || len(runs[0].ops) != 2 || len(runs[1].ops) != 1 {
		t.Fatalf("runs grouped wrong: %+v", runs)
	}
}
