// Package server is mgspd: a multi-tenant network front end over sharded
// namespaces of MGSP files. Clients speak a length-prefixed binary protocol
// (OPEN/READ/WRITE/FSYNC/SNAPSHOT/DROP/STAT/CLOSE, preceded by one HELLO
// that binds the connection to a tenant); writes are coalesced per shard
// into WriteMulti group commits so concurrent small writes share one
// metadata-log flush (Snapshot-style msync batching), and admission control
// sheds or delays new writes when the shadow log's high-water mark or the
// cleaner's lag gauge says reclamation is falling behind — the log never
// fills to ENOSPC under overload.
//
// The package splits as:
//
//	protocol.go   wire format (shared with internal/server/client)
//	server.go     listener, connections, tenant binding, dispatch
//	tenant.go     per-tenant quotas and counters
//	shard.go      one MGSP file system + its group-commit batch loop
//	batch.go      conflict-aware batch planning (disjoint WriteMulti runs)
//	obs.go        server registry, merged snapshots, HTTP side handler
//
// See DESIGN.md §12 for the framing grammar, the batching state machine,
// and the backpressure thresholds.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol limits. MaxData bounds one READ/WRITE payload; MaxFrame bounds
// any frame (data plus headers) so a corrupt length prefix cannot balloon
// an allocation.
const (
	MaxData  = 1 << 20
	MaxFrame = MaxData + 256
	MaxName  = 255
)

// Opcodes. A response echoes its request's opcode with RespBit set.
const (
	OpHello    = 1 // bind the connection to a tenant; must be first
	OpOpen     = 2 // open (or create) a file -> handle
	OpRead     = 3 // read [off, off+len) of a handle
	OpWrite    = 4 // failure-atomic write; acked after durability
	OpFsync    = 5 // persistence fence (MGSP writes are already durable)
	OpSnapshot = 6 // instant snapshot of a handle's file -> snapshot id
	OpDrop     = 7 // drop a snapshot by id
	OpStat     = 8 // merged obs snapshot as JSON
	OpClose    = 9 // close a handle

	// RespBit marks a frame as a response to the request whose opcode is in
	// the low bits.
	RespBit = 0x80
)

// OpenCreate is the OPEN flag selecting create-or-truncate semantics
// (otherwise the file must exist).
const OpenCreate = 1

// Status codes carried in every response.
const (
	StatusOK          = 0
	StatusNotExist    = 1 // no such file / snapshot
	StatusBusy        = 2 // shed by admission control; retry later
	StatusQuota       = 3 // tenant quota exceeded
	StatusBadRequest  = 4 // malformed frame or unknown handle
	StatusCrashed     = 5 // backing device failed; server is dead
	StatusNoTenant    = 6 // op before HELLO, or unknown tenant
	StatusHasSnapshot = 7 // op forbidden while snapshots are live
	StatusShutdown    = 8 // server is draining; no new ops
	StatusErr         = 9 // other server-side error (message in body)
)

// Errors the status codes decode to on the client side.
var (
	ErrNotExist    = errors.New("mgspd: file does not exist")
	ErrBusy        = errors.New("mgspd: busy (shed by admission control)")
	ErrQuota       = errors.New("mgspd: tenant quota exceeded")
	ErrBadRequest  = errors.New("mgspd: bad request")
	ErrCrashed     = errors.New("mgspd: server device crashed")
	ErrNoTenant    = errors.New("mgspd: no tenant bound (send HELLO first)")
	ErrHasSnapshot = errors.New("mgspd: file has live snapshots")
	ErrShutdown    = errors.New("mgspd: server shutting down")
)

// StatusErrors maps wire status codes to sentinel errors (StatusErr carries
// its message in the response body instead).
var StatusErrors = map[byte]error{
	StatusNotExist:    ErrNotExist,
	StatusBusy:        ErrBusy,
	StatusQuota:       ErrQuota,
	StatusBadRequest:  ErrBadRequest,
	StatusCrashed:     ErrCrashed,
	StatusNoTenant:    ErrNoTenant,
	StatusHasSnapshot: ErrHasSnapshot,
	StatusShutdown:    ErrShutdown,
}

// StatusOf maps a server-side error to its wire status.
func StatusOf(err error) byte {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrNotExist):
		return StatusNotExist
	case errors.Is(err, ErrBusy):
		return StatusBusy
	case errors.Is(err, ErrQuota):
		return StatusQuota
	case errors.Is(err, ErrBadRequest):
		return StatusBadRequest
	case errors.Is(err, ErrCrashed):
		return StatusCrashed
	case errors.Is(err, ErrNoTenant):
		return StatusNoTenant
	case errors.Is(err, ErrHasSnapshot):
		return StatusHasSnapshot
	case errors.Is(err, ErrShutdown):
		return StatusShutdown
	}
	return StatusErr
}

// WriteFrame writes one length-prefixed frame: u32 little-endian payload
// length, then the payload. Callers serialize concurrent writers.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame into a fresh buffer, rejecting oversized length
// prefixes before allocating.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame length %d exceeds MaxFrame", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Request framing: u8 opcode | u32 request id | body. The body grammar per
// opcode (all integers little-endian):
//
//	HELLO     u8 tenantLen | tenant
//	OPEN      u8 flags | u8 nameLen | name
//	READ      u32 handle | u64 off | u32 len
//	WRITE     u32 handle | u64 off | data...
//	FSYNC     u32 handle
//	SNAPSHOT  u32 handle
//	DROP      u32 handle | u64 snapID
//	STAT      (empty)
//	CLOSE     u32 handle
//
// Response framing: u8 opcode|RespBit | u32 request id | u8 status | body:
//
//	OPEN      u32 handle | u64 size
//	READ      data...
//	SNAPSHOT  u64 snapID
//	STAT      obs snapshot JSON (mgsp-obs/v1)
//	StatusErr error message text (any opcode)

// AppendRequestHeader appends the request header for (op, id).
func AppendRequestHeader(b []byte, op byte, id uint32) []byte {
	b = append(b, op)
	return binary.LittleEndian.AppendUint32(b, id)
}

// AppendResponseHeader appends the response header for (op, id, status).
func AppendResponseHeader(b []byte, op byte, id uint32, status byte) []byte {
	b = append(b, op|RespBit)
	b = binary.LittleEndian.AppendUint32(b, id)
	return append(b, status)
}

// ParseRequestHeader splits a request payload into opcode, id, and body.
func ParseRequestHeader(p []byte) (op byte, id uint32, body []byte, err error) {
	if len(p) < 5 {
		return 0, 0, nil, fmt.Errorf("server: short request header (%d bytes)", len(p))
	}
	return p[0], binary.LittleEndian.Uint32(p[1:5]), p[5:], nil
}

// ParseResponseHeader splits a response payload into opcode (RespBit
// cleared), id, status, and body.
func ParseResponseHeader(p []byte) (op byte, id uint32, status byte, body []byte, err error) {
	if len(p) < 6 {
		return 0, 0, 0, nil, fmt.Errorf("server: short response header (%d bytes)", len(p))
	}
	if p[0]&RespBit == 0 {
		return 0, 0, 0, nil, fmt.Errorf("server: response frame without RespBit (op %d)", p[0])
	}
	return p[0] &^ RespBit, binary.LittleEndian.Uint32(p[1:5]), p[5], p[6:], nil
}
