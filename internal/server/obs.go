package server

import (
	"net/http"
	"sync/atomic"

	"mgsp/internal/obs"
)

// serverObs is the server's own registry: the front-end metrics the per-
// shard FS registries cannot see (batching efficacy, admission decisions,
// connection and tenant traffic).
type serverObs struct {
	reg *obs.Registry

	// hBatchSize is the coalescing scorecard: ops per successful WriteMulti
	// group commit. Mean > 1 under concurrent writers is the whole point of
	// the batcher (acceptance criterion for ISSUE 6).
	hBatchSize *obs.Histogram

	cGroupCommits *obs.Counter // successful WriteMulti commits
	cWritesAcked  *obs.Counter // client writes acked durable
	cOps          *obs.Counter // requests served (post-HELLO)
	cShed         *obs.Counter // writes refused by backpressure
	cDelayed      *obs.Counter // writes stalled by backpressure
	cCrashed      *obs.Counter // 0 or 1: the device died
	gConns        atomic.Int64 // live connections
}

func (s *Server) initObs() {
	r := obs.NewRegistry()
	s.obs = serverObs{
		reg:           r,
		hBatchSize:    r.Histogram("server.batch_size"),
		cGroupCommits: r.Counter("server.group_commits"),
		cWritesAcked:  r.Counter("server.writes_acked"),
		cOps:          r.Counter("server.ops"),
		cShed:         r.Counter("server.shed"),
		cDelayed:      r.Counter("server.delayed"),
		cCrashed:      r.Counter("server.crashed"),
	}
	r.RegisterFunc("server.conns", func() float64 { return float64(s.obs.gConns.Load()) })
	r.RegisterFunc("server.queue_depth", func() float64 {
		var n int
		for _, sh := range s.shards {
			n += len(sh.queue)
		}
		return float64(n)
	})
	r.RegisterFunc("server.shards", func() float64 { return float64(len(s.shards)) })
}

// Snapshot merges the server registry with every shard FS's registry
// (prefixed "shard<i>.") into one mgsp-obs/v1 snapshot — the single
// document STAT returns and the side-port HTTP handler serves, so mgspstat
// sees batching, backpressure, tenants, core counters, and cleaner gauges
// in one fetch.
func (s *Server) Snapshot() *obs.Snapshot {
	out := s.obs.reg.Snapshot()
	for _, sh := range s.shards {
		sh.mergeObs(out)
	}
	return out
}

// Handler serves the merged snapshot over HTTP (/metrics, /metrics.json):
// the side-port endpoint mgspd exposes for `mgspstat fetch`.
func (s *Server) Handler() http.Handler {
	return obs.Handler(func() *obs.Snapshot { return s.Snapshot() }, nil)
}
