// Package client is the Go client for mgspd. One Client multiplexes any
// number of concurrent requests over a single connection: callers block on
// their own response while a background reader demultiplexes frames by
// request id, so sixteen goroutines hammering WriteAt through one Client is
// exactly the traffic shape the server's group-commit batcher coalesces.
//
// The client is deliberately ignorant of simulated time — virtual-time
// accounting happens server-side, where the device lives. That keeps this
// package usable from ordinary wall-clock programs (benches, examples,
// future real applications).
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"mgsp/internal/server"
)

// Client is a connection to mgspd bound to one tenant. Safe for concurrent
// use by multiple goroutines.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint32]chan respMsg
	seq     uint32
	err     error // set once the reader dies; fails all future requests
}

type respMsg struct {
	status byte
	body   []byte
}

// Dial connects to a server address and binds the connection to tenant.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := New(conn, tenant)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// New builds a Client over an existing connection (net.Pipe in tests and
// in-process benches) and performs the HELLO handshake for tenant.
func New(conn net.Conn, tenant string) (*Client, error) {
	if len(tenant) == 0 || len(tenant) > server.MaxName {
		return nil, fmt.Errorf("client: tenant name length %d out of range", len(tenant))
	}
	c := &Client{conn: conn, pending: make(map[uint32]chan respMsg)}
	go c.readLoop()
	body := append([]byte{byte(len(tenant))}, tenant...)
	if _, err := c.call(server.OpHello, body); err != nil {
		return nil, err
	}
	return c, nil
}

// Close tears down the connection; in-flight requests fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(errors.New("client: closed"))
	return err
}

// readLoop demultiplexes response frames to their waiting callers.
func (c *Client) readLoop() {
	for {
		p, err := server.ReadFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		_, id, status, body, err := server.ParseResponseHeader(p)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if ch != nil {
			ch <- respMsg{status: status, body: body}
		}
	}
}

// fail poisons the client and unblocks every waiter.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.pmu.Unlock()
}

// call sends one request and blocks for its response body.
func (c *Client) call(op byte, body []byte) ([]byte, error) {
	ch := make(chan respMsg, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return nil, err
	}
	c.seq++
	id := c.seq
	c.pending[id] = ch
	c.pmu.Unlock()

	frame := server.AppendRequestHeader(make([]byte, 0, 5+len(body)), op, id)
	frame = append(frame, body...)
	c.wmu.Lock()
	err := server.WriteFrame(c.conn, frame)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, err
	}

	r, ok := <-ch
	if !ok {
		c.pmu.Lock()
		err := c.err
		c.pmu.Unlock()
		return nil, err
	}
	return r.body, decodeStatus(r.status, r.body)
}

func decodeStatus(status byte, body []byte) error {
	if status == server.StatusOK {
		return nil
	}
	if err, ok := server.StatusErrors[status]; ok {
		return err
	}
	return fmt.Errorf("mgspd: %s", string(body))
}

// Stat fetches the server's merged obs snapshot as mgsp-obs/v1 JSON.
func (c *Client) Stat() ([]byte, error) {
	return c.call(server.OpStat, nil)
}

// File is a remote file handle. Its methods mirror vfs.File minus the
// sim.Ctx (server-side), and are safe for concurrent use.
type File struct {
	c      *Client
	handle uint32
	size   int64 // size at open; the server is authoritative after writes
}

// Open opens (or with create, creates) tenant-namespaced file name.
func (c *Client) Open(name string, create bool) (*File, error) {
	if len(name) == 0 || len(name) > server.MaxName {
		return nil, fmt.Errorf("client: file name length %d out of range", len(name))
	}
	var flags byte
	if create {
		flags = server.OpenCreate
	}
	body := append([]byte{flags, byte(len(name))}, name...)
	resp, err := c.call(server.OpOpen, body)
	if err != nil {
		return nil, err
	}
	if len(resp) < 12 {
		return nil, fmt.Errorf("client: short OPEN response (%d bytes)", len(resp))
	}
	return &File{
		c:      c,
		handle: le32(resp[0:4]),
		size:   int64(le64(resp[4:12])),
	}, nil
}

// ReadAt reads len(p) bytes at off. Short reads at EOF return n < len(p)
// with no error, matching vfs.File.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if len(p) > server.MaxData {
		return 0, fmt.Errorf("client: read of %d bytes exceeds MaxData", len(p))
	}
	body := make([]byte, 0, 16)
	body = appendU32(body, f.handle)
	body = appendU64(body, uint64(off))
	body = appendU32(body, uint32(len(p)))
	resp, err := f.c.call(server.OpRead, body)
	if err != nil {
		return 0, err
	}
	return copy(p, resp), nil
}

// WriteAt writes p at off, failure-atomically; it returns only after the
// server has made the write durable (possibly as part of a group commit).
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if len(p) > server.MaxData {
		return 0, fmt.Errorf("client: write of %d bytes exceeds MaxData", len(p))
	}
	body := make([]byte, 0, 12+len(p))
	body = appendU32(body, f.handle)
	body = appendU64(body, uint64(off))
	body = append(body, p...)
	if _, err := f.c.call(server.OpWrite, body); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Fsync is a persistence fence. MGSP writes are durable at ack, so this is
// a round-trip no-op kept for POSIX-shaped callers.
func (f *File) Fsync() error {
	_, err := f.c.call(server.OpFsync, appendU32(nil, f.handle))
	return err
}

// Snapshot freezes the file's current image and returns its id.
func (f *File) Snapshot() (uint64, error) {
	resp, err := f.c.call(server.OpSnapshot, appendU32(nil, f.handle))
	if err != nil {
		return 0, err
	}
	if len(resp) < 8 {
		return 0, fmt.Errorf("client: short SNAPSHOT response (%d bytes)", len(resp))
	}
	return le64(resp), nil
}

// DropSnapshot drops a snapshot taken on this file.
func (f *File) DropSnapshot(id uint64) error {
	body := appendU32(make([]byte, 0, 12), f.handle)
	body = appendU64(body, id)
	_, err := f.c.call(server.OpDrop, body)
	return err
}

// Size returns the size observed at open time (remote writes by others are
// not reflected; use ReadAt's short-read behavior to probe the live size).
func (f *File) Size() int64 { return f.size }

// Close releases the server-side handle.
func (f *File) Close() error {
	_, err := f.c.call(server.OpClose, appendU32(nil, f.handle))
	return err
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
