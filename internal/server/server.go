package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mgsp/internal/core"
	"mgsp/internal/crashtest"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Config configures a Server. The zero value serves: one shard, a 64 MiB
// device per shard, default MGSP options, open tenant enrollment with no
// quotas, and backpressure disabled (thresholds 0).
type Config struct {
	// Shards is the number of independent MGSP file systems (each its own
	// simulated device and group-commit batcher). Files hash to shards by
	// tenant-scoped name. Default 1.
	Shards int
	// DevSize is each shard's device size in bytes. Default 64 MiB.
	DevSize int64
	// FSOpts are the MGSP options for every shard; the zero value means
	// core.DefaultOptions(). Set CleanerInterval to give backpressure a
	// cleaner to watch.
	FSOpts core.Options
	// Seed derives each shard's and connection's sim context seed.
	Seed int64

	// BatchWait is how long the batcher lingers after the first write of a
	// batch, collecting more to coalesce. 0 means the 200µs default;
	// negative disables lingering (commit whatever is already queued).
	BatchWait time.Duration
	// MaxBatchOps caps writes per batch. Default 64.
	MaxBatchOps int
	// QueueCap is each shard's write-queue depth; enqueueing past it blocks
	// the submitting connection (natural backpressure). Default 256.
	QueueCap int

	// Backpressure thresholds; 0 disables each. Log blocks are the shard's
	// live shadow-log footprint (FS.LogBlocks); lag blocks are what the
	// last cleaner pass left unreclaimed (Cleaner.LagBlocks — the same
	// number mgspstat shows as cleaner.lag_blocks). Crossing a Delay
	// threshold stalls the write DelaySleep before admitting it; crossing a
	// Shed threshold refuses it with StatusBusy.
	DelayLogBlocks int64
	ShedLogBlocks  int64
	DelayLagBlocks int64
	ShedLagBlocks  int64
	// DelaySleep is the admission stall for delayed writes. Default 1ms.
	DelaySleep time.Duration

	// Tenants closes the tenant list to these names and quotas; nil means
	// any HELLO enrolls its tenant with DefaultQuota.
	Tenants      map[string]Quota
	DefaultQuota Quota

	// CommitHook, when set, observes every attempted group commit (the
	// torture harness's view into batch membership). Called from batcher
	// goroutines, after the attempt, before the acks.
	CommitHook func(CommitRecord)
}

func (c *Config) shards() int {
	if c.Shards <= 0 {
		return 1
	}
	return c.Shards
}

func (c *Config) devSize() int64 {
	if c.DevSize <= 0 {
		return 64 << 20
	}
	return c.DevSize
}

func (c *Config) batchWait() time.Duration {
	if c.BatchWait == 0 {
		return 200 * time.Microsecond
	}
	if c.BatchWait < 0 {
		return 0
	}
	return c.BatchWait
}

func (c *Config) maxBatchOps() int {
	if c.MaxBatchOps <= 0 {
		return 64
	}
	return c.MaxBatchOps
}

func (c *Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 256
	}
	return c.QueueCap
}

func (c *Config) delaySleep() time.Duration {
	if c.DelaySleep <= 0 {
		return time.Millisecond
	}
	return c.DelaySleep
}

// Server is a multi-tenant MGSP server. Build with New, feed it listeners
// via Serve or individual connections via ServeConn, stop with Close.
type Server struct {
	cfg     Config
	shards  []*shard
	tenants *tenantSet

	workerSeq atomic.Int64 // per-request sim context ids
	draining  atomic.Bool
	crashed   atomic.Bool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	wg     sync.WaitGroup // batcher goroutines
	connWg sync.WaitGroup // connection goroutines (and their handlers)

	obs serverObs
}

// New builds and starts a server (its batchers run immediately).
func New(cfg Config) (*Server, error) {
	if cfg.FSOpts == (core.Options{}) {
		cfg.FSOpts = core.DefaultOptions()
	}
	s := &Server{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.initObs()
	s.tenants = newTenantSet(cfg.Tenants, cfg.DefaultQuota, s.obs.reg)
	for i := 0; i < cfg.shards(); i++ {
		s.shards = append(s.shards, s.newShard(i))
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.run()
	}
	return s, nil
}

// shardFor hashes a tenant-scoped file name to its shard.
func (s *Server) shardFor(key string) *shard {
	h := fnv.New32a()
	io.WriteString(h, key)
	return s.shards[int(h.Sum32())%len(s.shards)]
}

func (s *Server) newCtx() *sim.Ctx {
	seq := s.workerSeq.Add(1)
	return sim.NewCtx(connWorkerBase+int(seq), s.cfg.Seed^(seq<<20))
}

func (s *Server) dead() bool { return s.crashed.Load() || s.draining.Load() }

func (s *Server) deadErr() error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	return ErrShutdown
}

func (s *Server) noteCrash() {
	if s.crashed.CompareAndSwap(false, true) {
		s.obs.cCrashed.Add(1)
	}
}

func (s *Server) hook(rec CommitRecord) {
	if s.cfg.CommitHook != nil {
		s.cfg.CommitHook(rec)
	}
}

// Serve accepts connections on l until the listener closes (Close does).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			s.serveConn(conn)
		}()
	}
}

// ServeConn serves one connection synchronously (net.Pipe in tests and
// in-process benches) until the peer closes it or the server shuts down.
func (s *Server) ServeConn(nc net.Conn) {
	s.connWg.Add(1)
	defer s.connWg.Done()
	s.serveConn(nc)
}

func (s *Server) serveConn(nc net.Conn) {
	s.mu.Lock()
	s.conns[nc] = struct{}{}
	s.mu.Unlock()
	s.obs.gConns.Add(1)

	c := &conn{srv: s, nc: nc, handles: make(map[uint32]*srvFile)}
	c.loop()
	c.teardown()

	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	s.obs.gConns.Add(-1)
	nc.Close()
}

// Close drains the server: stop accepting, sever connections, let queued
// writes commit, close every file (write-back), and stop the batchers. The
// shard devices stay readable afterwards (SaveImage, Audit).
func (s *Server) Close() error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.connWg.Wait() // no handler can touch a queue past this point
	for _, sh := range s.shards {
		close(sh.queue)
	}
	s.wg.Wait()
	if !s.crashed.Load() {
		ctx := s.newCtx()
		for _, sh := range s.shards {
			sh.closeAll(ctx)
		}
	}
	return nil
}

// SaveImage writes shard i's durable device image to w (mgspfsck -load
// reads it back). Call after Close for a clean, written-back image.
func (s *Server) SaveImage(i int, w io.Writer) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("server: no shard %d", i)
	}
	return s.shards[i].dev.Save(w)
}

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Device exposes shard i's simulated device. The torture harness arms
// crashes and remounts through it; production callers have no business
// here.
func (s *Server) Device(i int) *nvm.Device { return s.shards[i].dev }

// FSOptions returns the MGSP options the shards were built with (what a
// post-crash Mount of a shard device must use).
func (s *Server) FSOptions() core.Options { return s.cfg.FSOpts }

// admitWrite is the backpressure gate, consulted before a write enqueues:
// over a Shed threshold the write is refused (the client sees ErrBusy and
// owns the retry); over a Delay threshold it stalls DelaySleep first, which
// both paces intake and donates this goroutine's wall-clock to let the
// batcher's cooperative cleaner passes catch up. Thresholds at 0 are off.
func (s *Server) admitWrite(sh *shard, t *tenant) error {
	c := &s.cfg
	var logBlocks, lag int64
	if c.ShedLogBlocks > 0 || c.DelayLogBlocks > 0 {
		logBlocks = sh.fs.LogBlocks()
	}
	if c.ShedLagBlocks > 0 || c.DelayLagBlocks > 0 {
		if cl := sh.fs.Cleaner(); cl != nil {
			lag = cl.LagBlocks()
		}
	}
	if (c.ShedLogBlocks > 0 && logBlocks >= c.ShedLogBlocks) ||
		(c.ShedLagBlocks > 0 && lag >= c.ShedLagBlocks) {
		s.obs.cShed.Add(1)
		t.shed.Add(1)
		return ErrBusy
	}
	if (c.DelayLogBlocks > 0 && logBlocks >= c.DelayLogBlocks) ||
		(c.DelayLagBlocks > 0 && lag >= c.DelayLagBlocks) {
		s.obs.cDelayed.Add(1)
		time.Sleep(c.delaySleep())
	}
	return nil
}

// conn is one client connection's server-side state.
type conn struct {
	srv *Server
	nc  net.Conn
	wmu sync.Mutex // response frames interleave from handler goroutines

	ten *tenant

	hmu        sync.Mutex
	handles    map[uint32]*srvFile
	nextHandle uint32

	handlers sync.WaitGroup
}

func (c *conn) loop() {
	for {
		frame, err := ReadFrame(c.nc)
		if err != nil {
			return
		}
		op, id, body, err := ParseRequestHeader(frame)
		if err != nil {
			c.reply(op, id, StatusBadRequest, nil)
			return
		}
		if op == OpHello {
			c.hello(id, body)
			continue
		}
		if c.ten == nil {
			c.reply(op, id, StatusNoTenant, nil)
			continue
		}
		// Each request gets its own goroutine so one blocked write (group
		// commit in flight, or backpressure stall) does not head-of-line
		// block the connection's reads.
		c.handlers.Add(1)
		go func() {
			defer c.handlers.Done()
			c.handle(op, id, body)
		}()
	}
}

func (c *conn) teardown() {
	c.handlers.Wait()
	ctx := c.srv.newCtx()
	c.hmu.Lock()
	files := make([]*srvFile, 0, len(c.handles))
	for _, sf := range c.handles {
		files = append(files, sf)
	}
	c.handles = make(map[uint32]*srvFile)
	c.hmu.Unlock()
	for _, sf := range files {
		sf.release(ctx)
		c.ten.releaseFile()
	}
}

func (c *conn) reply(op byte, id uint32, status byte, body []byte) {
	frame := AppendResponseHeader(make([]byte, 0, 6+len(body)), op, id, status)
	frame = append(frame, body...)
	c.wmu.Lock()
	WriteFrame(c.nc, frame) // a dead conn fails here; teardown handles it
	c.wmu.Unlock()
}

// replyErr acks err: a sentinel maps to its status code, anything else goes
// out as StatusErr with the message as body.
func (c *conn) replyErr(op byte, id uint32, err error) {
	status := StatusOf(err)
	var body []byte
	if status == StatusErr {
		body = []byte(err.Error())
	}
	c.reply(op, id, status, body)
}

func (c *conn) hello(id uint32, body []byte) {
	if c.ten != nil {
		c.reply(OpHello, id, StatusBadRequest, []byte("already bound"))
		return
	}
	if len(body) < 1 || len(body) != 1+int(body[0]) || body[0] == 0 {
		c.reply(OpHello, id, StatusBadRequest, nil)
		return
	}
	t, err := c.srv.tenants.get(string(body[1:]))
	if err != nil {
		c.replyErr(OpHello, id, err)
		return
	}
	c.ten = t
	c.reply(OpHello, id, StatusOK, nil)
}

func (c *conn) lookup(h uint32) *srvFile {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	return c.handles[h]
}

func (c *conn) handle(op byte, id uint32, body []byte) {
	if !c.ten.enter() {
		c.reply(op, id, StatusQuota, nil)
		return
	}
	defer c.ten.leave()
	c.srv.obs.cOps.Add(1)
	switch op {
	case OpOpen:
		c.handleOpen(id, body)
	case OpRead:
		c.handleRead(id, body)
	case OpWrite:
		c.handleWrite(id, body)
	case OpFsync:
		c.handleFsync(id, body)
	case OpSnapshot:
		c.handleSnapshot(id, body)
	case OpDrop:
		c.handleDrop(id, body)
	case OpStat:
		c.handleStat(id)
	case OpClose:
		c.handleClose(id, body)
	default:
		c.reply(op, id, StatusBadRequest, nil)
	}
}

// pmfile slot names hold 56 bytes; the tenant-scoped key must fit.
const maxKeyLen = 56

func (c *conn) handleOpen(id uint32, body []byte) {
	if len(body) < 2 || len(body) != 2+int(body[1]) || body[1] == 0 {
		c.reply(OpOpen, id, StatusBadRequest, nil)
		return
	}
	create := body[0]&OpenCreate != 0
	name := string(body[2:])
	key := c.ten.name + "/" + name
	if len(key) > maxKeyLen {
		c.replyErr(OpOpen, id, fmt.Errorf("tenant-scoped name %q exceeds %d bytes", key, maxKeyLen))
		return
	}
	if c.srv.dead() {
		c.replyErr(OpOpen, id, c.srv.deadErr())
		return
	}
	if !c.ten.reserveFile() {
		c.reply(OpOpen, id, StatusQuota, nil)
		return
	}
	sf, err := c.srv.shardFor(key).openFile(c.srv.newCtx(), key, create)
	if err != nil {
		c.ten.releaseFile()
		c.replyErr(OpOpen, id, err)
		return
	}
	c.hmu.Lock()
	c.nextHandle++
	h := c.nextHandle
	c.handles[h] = sf
	c.hmu.Unlock()
	resp := binary.LittleEndian.AppendUint32(make([]byte, 0, 12), h)
	resp = binary.LittleEndian.AppendUint64(resp, uint64(sf.vf.Size()))
	c.reply(OpOpen, id, StatusOK, resp)
}

func (c *conn) handleRead(id uint32, body []byte) {
	if len(body) != 16 {
		c.reply(OpRead, id, StatusBadRequest, nil)
		return
	}
	sf := c.lookup(binary.LittleEndian.Uint32(body[0:4]))
	off := int64(binary.LittleEndian.Uint64(body[4:12]))
	n := binary.LittleEndian.Uint32(body[12:16])
	if sf == nil || off < 0 || n > MaxData {
		c.reply(OpRead, id, StatusBadRequest, nil)
		return
	}
	if c.srv.crashed.Load() {
		c.reply(OpRead, id, StatusCrashed, nil)
		return
	}
	buf := make([]byte, n)
	var got int
	var err error
	crashtest.Shield(func() { got, err = sf.vf.ReadAt(c.srv.newCtx(), buf, off) })
	if c.srv.crashed.Load() || sf.sh.dev.Crashed() {
		c.srv.noteCrash()
		c.reply(OpRead, id, StatusCrashed, nil)
		return
	}
	if err != nil {
		c.replyErr(OpRead, id, err)
		return
	}
	c.ten.bytesRead.Add(int64(got))
	c.reply(OpRead, id, StatusOK, buf[:got])
}

func (c *conn) handleWrite(id uint32, body []byte) {
	if len(body) < 12 {
		c.reply(OpWrite, id, StatusBadRequest, nil)
		return
	}
	sf := c.lookup(binary.LittleEndian.Uint32(body[0:4]))
	off := int64(binary.LittleEndian.Uint64(body[4:12]))
	data := body[12:]
	if sf == nil || off < 0 || len(data) == 0 || len(data) > MaxData {
		c.reply(OpWrite, id, StatusBadRequest, nil)
		return
	}
	if c.srv.dead() {
		c.replyErr(OpWrite, id, c.srv.deadErr())
		return
	}
	if err := c.srv.admitWrite(sf.sh, c.ten); err != nil {
		c.replyErr(OpWrite, id, err)
		return
	}
	growth := off + int64(len(data)) - sf.vf.Size()
	if growth < 0 {
		growth = 0
	}
	if !c.ten.reserveBytes(growth) {
		c.reply(OpWrite, id, StatusQuota, nil)
		return
	}
	op := &writeOp{sf: sf, ten: c.ten, off: off, data: data, growth: growth,
		done: make(chan error, 1)}
	sf.sh.queue <- op
	if err := <-op.done; err != nil {
		c.replyErr(OpWrite, id, err)
		return
	}
	c.reply(OpWrite, id, StatusOK, nil)
}

func (c *conn) handleFsync(id uint32, body []byte) {
	sf := c.handleArg(OpFsync, id, body)
	if sf == nil {
		return
	}
	var err error
	crashtest.Shield(func() { err = sf.vf.Fsync(c.srv.newCtx()) })
	if sf.sh.dev.Crashed() {
		c.srv.noteCrash()
		c.reply(OpFsync, id, StatusCrashed, nil)
		return
	}
	if err != nil {
		c.replyErr(OpFsync, id, err)
		return
	}
	c.reply(OpFsync, id, StatusOK, nil)
}

func (c *conn) handleSnapshot(id uint32, body []byte) {
	sf := c.handleArg(OpSnapshot, id, body)
	if sf == nil {
		return
	}
	if c.srv.dead() {
		c.replyErr(OpSnapshot, id, c.srv.deadErr())
		return
	}
	var sid core.SnapID
	var err error
	crashtest.Shield(func() { sid, err = sf.sh.fs.Snapshot(c.srv.newCtx(), sf.key) })
	if sf.sh.dev.Crashed() {
		c.srv.noteCrash()
		c.reply(OpSnapshot, id, StatusCrashed, nil)
		return
	}
	if err != nil {
		c.replyErr(OpSnapshot, id, mapCoreErr(err))
		return
	}
	c.reply(OpSnapshot, id, StatusOK,
		binary.LittleEndian.AppendUint64(make([]byte, 0, 8), uint64(sid)))
}

func (c *conn) handleDrop(id uint32, body []byte) {
	if len(body) != 12 {
		c.reply(OpDrop, id, StatusBadRequest, nil)
		return
	}
	sf := c.lookup(binary.LittleEndian.Uint32(body[0:4]))
	if sf == nil {
		c.reply(OpDrop, id, StatusBadRequest, nil)
		return
	}
	snapID := core.SnapID(binary.LittleEndian.Uint64(body[4:12]))
	if c.srv.dead() {
		c.replyErr(OpDrop, id, c.srv.deadErr())
		return
	}
	var err error
	crashtest.Shield(func() { err = sf.sh.fs.DropSnapshot(c.srv.newCtx(), sf.key, snapID) })
	if sf.sh.dev.Crashed() {
		c.srv.noteCrash()
		c.reply(OpDrop, id, StatusCrashed, nil)
		return
	}
	if err != nil {
		c.replyErr(OpDrop, id, mapCoreErr(err))
		return
	}
	c.reply(OpDrop, id, StatusOK, nil)
}

func (c *conn) handleStat(id uint32) {
	var buf writeBuffer
	if err := c.srv.Snapshot().WriteJSON(&buf); err != nil {
		c.replyErr(OpStat, id, err)
		return
	}
	c.reply(OpStat, id, StatusOK, buf)
}

func (c *conn) handleClose(id uint32, body []byte) {
	if len(body) != 4 {
		c.reply(OpClose, id, StatusBadRequest, nil)
		return
	}
	h := binary.LittleEndian.Uint32(body[0:4])
	c.hmu.Lock()
	sf := c.handles[h]
	delete(c.handles, h)
	c.hmu.Unlock()
	if sf == nil {
		c.reply(OpClose, id, StatusBadRequest, nil)
		return
	}
	sf.release(c.srv.newCtx())
	c.ten.releaseFile()
	c.reply(OpClose, id, StatusOK, nil)
}

// handleArg parses the common u32-handle-only request body.
func (c *conn) handleArg(op byte, id uint32, body []byte) *srvFile {
	if len(body) != 4 {
		c.reply(op, id, StatusBadRequest, nil)
		return nil
	}
	sf := c.lookup(binary.LittleEndian.Uint32(body[0:4]))
	if sf == nil {
		c.reply(op, id, StatusBadRequest, nil)
		return nil
	}
	return sf
}

// mapCoreErr folds core/vfs errors into the protocol's sentinels.
func mapCoreErr(err error) error {
	switch {
	case errors.Is(err, vfs.ErrNotExist), errors.Is(err, core.ErrSnapshotNotFound):
		return ErrNotExist
	case errors.Is(err, core.ErrHasSnapshots), errors.Is(err, core.ErrSnapshotBusy):
		return ErrHasSnapshot
	}
	return err
}

// writeBuffer is an append-only io.Writer (bytes.Buffer without the copy on
// handing the bytes to reply).
type writeBuffer []byte

func (b *writeBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
