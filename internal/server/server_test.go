package server_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mgsp/internal/obs"
	"mgsp/internal/server"
	"mgsp/internal/server/client"
)

// pipeClient wires a client to srv over an in-process net.Pipe.
func pipeClient(t *testing.T, srv *server.Server, tenant string) *client.Client {
	t.Helper()
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	c, err := client.New(cc, tenant)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func newServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestEndToEnd(t *testing.T) {
	srv := newServer(t, server.Config{})
	c := pipeClient(t, srv, "acme")

	f, err := c.Open("db", true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := bytes.Repeat([]byte{0xAB}, 1000)
	if _, err := f.WriteAt(want, 4096); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, 1000)
	if n, err := f.ReadAt(got, 4096); err != nil || n != 1000 {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back wrong bytes")
	}
	if err := f.Fsync(); err != nil {
		t.Fatalf("fsync: %v", err)
	}

	// Snapshot isolates the frozen image from later writes (server-side the
	// snapshot machinery is core's; here we just prove the plumbing).
	sid, err := f.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xCD}, 1000), 4096); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := f.DropSnapshot(sid); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if err := f.DropSnapshot(sid); err != server.ErrNotExist {
		t.Fatalf("double drop: %v, want ErrNotExist", err)
	}

	raw, err := c.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	snap, err := obs.ParseSnapshot(raw)
	if err != nil {
		t.Fatalf("stat payload: %v", err)
	}
	if snap.Values["server.writes_acked"] < 2 {
		t.Fatalf("writes_acked = %g, want >= 2", snap.Values["server.writes_acked"])
	}
	if _, ok := snap.Values["shard0.core.meta_entries"]; !ok {
		t.Fatal("merged snapshot is missing shard0.core.* metrics")
	}
	if _, ok := snap.Values["tenant.acme.ops"]; !ok {
		t.Fatal("merged snapshot is missing tenant counters")
	}

	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	srv := newServer(t, server.Config{})
	c := pipeClient(t, srv, "acme")
	if _, err := c.Open("nope", false); err != server.ErrNotExist {
		t.Fatalf("open missing: %v, want ErrNotExist", err)
	}
}

func TestTenantIsolation(t *testing.T) {
	srv := newServer(t, server.Config{})
	a := pipeClient(t, srv, "alice")
	b := pipeClient(t, srv, "bob")

	fa, err := a.Open("x", true)
	if err != nil {
		t.Fatalf("alice open: %v", err)
	}
	if _, err := fa.WriteAt([]byte("alice-data"), 0); err != nil {
		t.Fatalf("alice write: %v", err)
	}
	// Bob's "x" is a different file: it does not exist in his namespace.
	if _, err := b.Open("x", false); err != server.ErrNotExist {
		t.Fatalf("bob open of alice's file: %v, want ErrNotExist", err)
	}
	fb, err := b.Open("x", true)
	if err != nil {
		t.Fatalf("bob create: %v", err)
	}
	buf := make([]byte, 10)
	if n, _ := fb.ReadAt(buf, 0); n != 0 {
		t.Fatalf("bob read %d bytes of alice's data", n)
	}
}

func TestClosedTenantListRejectsUnknown(t *testing.T) {
	srv := newServer(t, server.Config{
		Tenants: map[string]server.Quota{"known": {}},
	})
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	if _, err := client.New(cc, "stranger"); err != server.ErrNoTenant {
		t.Fatalf("unknown tenant HELLO: %v, want ErrNoTenant", err)
	}
	cc.Close()
	c := pipeClient(t, srv, "known")
	if _, err := c.Open("f", true); err != nil {
		t.Fatalf("known tenant open: %v", err)
	}
}

func TestQuotas(t *testing.T) {
	srv := newServer(t, server.Config{
		DefaultQuota: server.Quota{MaxBytes: 8192, MaxFiles: 1},
	})
	c := pipeClient(t, srv, "t")

	f, err := c.Open("a", true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := c.Open("b", true); err != server.ErrQuota {
		t.Fatalf("second open: %v, want ErrQuota (MaxFiles=1)", err)
	}
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("write within quota: %v", err)
	}
	if _, err := f.WriteAt(make([]byte, 4096), 100000); err != server.ErrQuota {
		t.Fatalf("write past MaxBytes: %v, want ErrQuota", err)
	}
	// Overwrites grow nothing and stay admitted at the cap.
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("overwrite at quota: %v", err)
	}
	// Closing a file returns its MaxFiles slot.
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := c.Open("b", true); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

// TestGroupCommitCoalesces is ISSUE 6's acceptance scenario: 16 concurrent
// clients issue 256B–1KiB writes against one shard; the batcher must
// coalesce them (mean WriteMulti batch size > 1) and amortize the metadata
// log (meta entries per acked write < 1).
func TestGroupCommitCoalesces(t *testing.T) {
	srv := newServer(t, server.Config{
		Shards:    1,
		BatchWait: 2 * time.Millisecond,
	})

	const clients = 16
	const writesEach = 32
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		c := pipeClient(t, srv, "load")
		f, err := c.Open("hot", true)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		wg.Add(1)
		go func(i int, f *client.File) {
			defer wg.Done()
			for j := 0; j < writesEach; j++ {
				size := 256 + (i*67+j*131)%769 // 256..1024
				data := bytes.Repeat([]byte{byte(i)}, size)
				// Disjoint 4 KiB-aligned slots per client keep the batch
				// conflict-free, the best case for coalescing.
				off := int64(i*writesEach+j) * 4096
				if _, err := f.WriteAt(data, off); err != nil {
					t.Errorf("client %d write %d: %v", i, j, err)
					return
				}
			}
		}(i, f)
	}
	wg.Wait()

	snap := srv.Snapshot()
	acked := snap.Values["server.writes_acked"]
	if want := float64(clients * writesEach); acked != want {
		t.Fatalf("writes_acked = %g, want %g", acked, want)
	}
	bs, ok := snap.Hists["server.batch_size"]
	if !ok {
		t.Fatal("no server.batch_size histogram")
	}
	if bs.Mean <= 1 {
		t.Fatalf("mean batch size = %.2f, want > 1 (no coalescing happened)", bs.Mean)
	}
	metaPerAck := snap.Values["shard0.core.meta_entries"] / acked
	if metaPerAck >= 1 {
		t.Fatalf("meta entries per acked write = %.2f, want < 1", metaPerAck)
	}
	t.Logf("mean batch size %.2f, meta entries per acked write %.2f", bs.Mean, metaPerAck)
}

// TestOverlappingWritesSplitSubBatches drives same-offset writes through
// the batcher: WriteMulti rejects overlapping updates, so correctness here
// proves the planner's sub-batch split, and the last writer's data must
// win (commit order preserves submission order).
func TestOverlappingWritesSplitSubBatches(t *testing.T) {
	srv := newServer(t, server.Config{BatchWait: 2 * time.Millisecond})
	c := pipeClient(t, srv, "t")
	f, err := c.Open("clash", true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte('A' + i)}, 512)
			for j := 0; j < 16; j++ {
				if _, err := f.WriteAt(data, 0); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	got := make([]byte, 512)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	first := got[0]
	if first < 'A' || first >= 'A'+writers {
		t.Fatalf("byte 0 = %q, not any writer's pattern", first)
	}
	for i, b := range got {
		if b != first {
			t.Fatalf("torn block: byte %d is %q, byte 0 is %q", i, b, first)
		}
	}
}

func TestBackpressureSheds(t *testing.T) {
	srv := newServer(t, server.Config{
		// A threshold of 1 log block trips as soon as anything is logged —
		// the induced-stall case without needing a real stalled cleaner.
		ShedLogBlocks: 1,
	})
	c := pipeClient(t, srv, "t")
	f, err := c.Open("f", true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("first write: %v", err)
	}
	var shed bool
	for i := 0; i < 50; i++ {
		if _, err := f.WriteAt(make([]byte, 512), int64(i)*4096); err == server.ErrBusy {
			shed = true
			break
		} else if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !shed {
		t.Fatal("no write was shed despite ShedLogBlocks=1")
	}
	if srv.Snapshot().Values["server.shed"] < 1 {
		t.Fatal("server.shed did not count the refusal")
	}
}

func TestStatOverHTTPHandler(t *testing.T) {
	srv := newServer(t, server.Config{})
	c := pipeClient(t, srv, "t")
	f, err := c.Open("f", true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The Handler is exercised end-to-end (HTTP listener and all) by
	// cmd/mgspd's serve-smoke; here pin the snapshot contract it serves.
	snap := srv.Snapshot()
	if snap.Schema != obs.SnapshotSchema {
		t.Fatalf("schema %q", snap.Schema)
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := obs.ParseSnapshot(buf.Bytes()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestCleanShutdownFailsLateOps(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := pipeClient(t, srv, "t")
	f, err := c.Open("f", true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteAt([]byte("pre-shutdown"), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := f.WriteAt([]byte("post-shutdown"), 0); err == nil {
		t.Fatal("write after Close succeeded")
	}
	// Closing twice is a no-op, not a hang or panic.
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestSaveImageAfterClose(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := pipeClient(t, srv, "t")
	f, err := c.Open("f", true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{7}, 8192), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	srv.Close()
	var img bytes.Buffer
	if err := srv.SaveImage(0, &img); err != nil {
		t.Fatalf("save: %v", err)
	}
	if img.Len() == 0 {
		t.Fatal("empty image")
	}
	if err := srv.SaveImage(5, &img); err == nil {
		t.Fatal("save of bogus shard index succeeded")
	}
}

func TestManyTenantsManyShards(t *testing.T) {
	srv := newServer(t, server.Config{Shards: 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		c := pipeClient(t, srv, fmt.Sprintf("tenant%d", i))
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				f, err := c.Open(fmt.Sprintf("f%d", j), true)
				if err != nil {
					t.Errorf("tenant %d open %d: %v", i, j, err)
					return
				}
				if _, err := f.WriteAt([]byte("hello"), int64(j)*100); err != nil {
					t.Errorf("tenant %d write %d: %v", i, j, err)
					return
				}
				if err := f.Close(); err != nil {
					t.Errorf("tenant %d close %d: %v", i, j, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	snap := srv.Snapshot()
	if snap.Values["server.tenants"] != 8 {
		t.Fatalf("server.tenants = %g, want 8", snap.Values["server.tenants"])
	}
}
