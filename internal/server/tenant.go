package server

import (
	"sync"
	"sync/atomic"

	"mgsp/internal/obs"
)

// Quota bounds one tenant's footprint. Zero fields are unlimited.
type Quota struct {
	// MaxBytes caps the summed sizes of the tenant's files. Enforced at
	// write admission against the growth the write implies; accounting is
	// advisory (concurrent extenders of the same region can briefly
	// double-count), which errs toward admitting — a quota is a budget, not
	// a security boundary.
	MaxBytes int64
	// MaxFiles caps concurrently open handles across the tenant's conns.
	MaxFiles int64
	// MaxInFlight caps the tenant's requests being served at once; the
	// excess gets StatusQuota immediately rather than queueing.
	MaxInFlight int64
}

// tenant is the server-side accounting record for one tenant name. All
// fields are atomics: quota checks happen on every request.
type tenant struct {
	name  string
	quota Quota

	bytes    atomic.Int64 // summed file sizes (see Quota.MaxBytes)
	files    atomic.Int64 // open handles
	inflight atomic.Int64 // requests being served

	ops          *obs.Counter // requests served (any opcode)
	writesAcked  *obs.Counter
	bytesWritten *obs.Counter
	bytesRead    *obs.Counter
	shed         *obs.Counter // writes refused: backpressure
	rejected     *obs.Counter // requests refused: quota
}

// tenantSet is the tenant registry. When quotas is non-nil the tenant list
// is closed (HELLO for an unlisted name fails); otherwise tenants enroll on
// first HELLO with the default quota.
type tenantSet struct {
	mu      sync.Mutex
	byName  map[string]*tenant
	quotas  map[string]Quota // nil = open enrollment
	defq    Quota
	reg     *obs.Registry
	created *obs.Counter
}

func newTenantSet(quotas map[string]Quota, defq Quota, reg *obs.Registry) *tenantSet {
	return &tenantSet{
		byName:  make(map[string]*tenant),
		quotas:  quotas,
		defq:    defq,
		reg:     reg,
		created: reg.Counter("server.tenants"),
	}
}

// get resolves (creating if permitted) the tenant for a HELLO.
func (ts *tenantSet) get(name string) (*tenant, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t := ts.byName[name]; t != nil {
		return t, nil
	}
	q := ts.defq
	if ts.quotas != nil {
		var ok bool
		if q, ok = ts.quotas[name]; !ok {
			return nil, ErrNoTenant
		}
	}
	t := &tenant{name: name, quota: q}
	p := "tenant." + name + "."
	t.ops = ts.reg.Counter(p + "ops")
	t.writesAcked = ts.reg.Counter(p + "writes_acked")
	t.bytesWritten = ts.reg.Counter(p + "bytes_written")
	t.bytesRead = ts.reg.Counter(p + "bytes_read")
	t.shed = ts.reg.Counter(p + "shed")
	t.rejected = ts.reg.Counter(p + "rejected")
	ts.reg.RegisterFunc(p+"bytes", func() float64 { return float64(t.bytes.Load()) })
	ts.reg.RegisterFunc(p+"open_files", func() float64 { return float64(t.files.Load()) })
	ts.byName[name] = t
	ts.created.Add(1)
	return t, nil
}

// enter admits one request into the tenant's in-flight window; the caller
// must pair it with leave(). A false return means the in-flight quota is
// exhausted (and the rejection has been counted).
func (t *tenant) enter() bool {
	n := t.inflight.Add(1)
	if t.quota.MaxInFlight > 0 && n > t.quota.MaxInFlight {
		t.inflight.Add(-1)
		t.rejected.Add(1)
		return false
	}
	t.ops.Add(1)
	return true
}

func (t *tenant) leave() { t.inflight.Add(-1) }

// reserveFile claims one open-handle slot, false when MaxFiles is reached.
func (t *tenant) reserveFile() bool {
	n := t.files.Add(1)
	if t.quota.MaxFiles > 0 && n > t.quota.MaxFiles {
		t.files.Add(-1)
		t.rejected.Add(1)
		return false
	}
	return true
}

func (t *tenant) releaseFile() { t.files.Add(-1) }

// reserveBytes claims growth bytes against MaxBytes, false when the quota
// would be exceeded. Release with growBytes(-growth) if the write fails.
func (t *tenant) reserveBytes(growth int64) bool {
	if growth <= 0 {
		return true
	}
	n := t.bytes.Add(growth)
	if t.quota.MaxBytes > 0 && n > t.quota.MaxBytes {
		t.bytes.Add(-growth)
		t.rejected.Add(1)
		return false
	}
	return true
}

func (t *tenant) growBytes(d int64) { t.bytes.Add(d) }
