package server

import (
	"fmt"
	"sync"
	"time"

	"mgsp/internal/core"
	"mgsp/internal/crashtest"
	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Worker-id bases for the sim contexts the server mints. They only need to
// be unique among concurrent operations (metadata-log claims hash them,
// lock owners compare them); the ranges keep them recognizable in traces.
const (
	connWorkerBase  = 1 << 17 // per-request contexts on connection goroutines
	batchWorkerBase = 1 << 18 // one per shard batcher
)

// multiWriter matches core's handle; the batcher commits through it.
type multiWriter interface {
	WriteMulti(ctx *sim.Ctx, updates []core.Update) error
}

// srvFile is a server-side shared open file: every client handle on the
// same (tenant, name) maps to one vfs.File, so MGSP's close-time write-back
// fires when the last client lets go, not per client.
type srvFile struct {
	sh   *shard
	key  string // tenant-scoped name; the name inside the FS namespace
	vf   vfs.File
	mw   multiWriter // vf downcast once at open
	refs int         // guarded by sh.mu
}

// shard is one MGSP file system plus the single goroutine that group-commits
// its writes. Sharding is by tenant-scoped file name, so one hot tenant
// saturating its shard's batcher leaves other shards' latency alone.
type shard struct {
	srv *Server
	idx int
	dev *nvm.Device
	fs  *core.FS
	ctx *sim.Ctx // the batcher's context; only the batcher goroutine uses it

	queue chan *writeOp

	mu   sync.Mutex
	open map[string]*srvFile
}

func (s *Server) newShard(idx int) *shard {
	dev := nvm.New(s.cfg.devSize(), sim.DefaultCosts())
	return &shard{
		srv:   s,
		idx:   idx,
		dev:   dev,
		fs:    core.MustNew(dev, s.cfg.FSOpts),
		ctx:   sim.NewCtx(batchWorkerBase+idx, s.cfg.Seed+int64(idx)),
		queue: make(chan *writeOp, s.cfg.queueCap()),
		open:  make(map[string]*srvFile),
	}
}

// openFile returns the shared handle for key, opening or creating the file
// on first use. ctx is the calling request's context.
func (sh *shard) openFile(ctx *sim.Ctx, key string, create bool) (*srvFile, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sf := sh.open[key]; sf != nil {
		sf.refs++
		return sf, nil
	}
	var vf vfs.File
	var err error
	crashtest.Shield(func() {
		vf, err = sh.fs.Open(ctx, key)
		if err == vfs.ErrNotExist && create {
			vf, err = sh.fs.Create(ctx, key)
		}
	})
	if sh.dev.Crashed() {
		return nil, ErrCrashed
	}
	if err != nil {
		if err == vfs.ErrNotExist {
			return nil, ErrNotExist
		}
		return nil, err
	}
	mw, ok := vf.(multiWriter)
	if !ok {
		vf.Close(ctx)
		return nil, fmt.Errorf("server: %T does not support WriteMulti", vf)
	}
	sf := &srvFile{sh: sh, key: key, vf: vf, mw: mw, refs: 1}
	sh.open[key] = sf
	return sf, nil
}

// release drops one reference; the last one closes the underlying file
// (triggering MGSP's close-time log write-back).
func (sf *srvFile) release(ctx *sim.Ctx) {
	sh := sf.sh
	sh.mu.Lock()
	sf.refs--
	last := sf.refs == 0
	if last {
		delete(sh.open, sf.key)
	}
	sh.mu.Unlock()
	if last {
		crashtest.Shield(func() { sf.vf.Close(ctx) })
	}
}

// closeAll closes every shared handle (shutdown path, after the batcher has
// drained) so the device image carries written-back, fsck-clean state.
func (sh *shard) closeAll(ctx *sim.Ctx) {
	sh.mu.Lock()
	files := make([]*srvFile, 0, len(sh.open))
	for _, sf := range sh.open {
		files = append(files, sf)
	}
	sh.open = make(map[string]*srvFile)
	sh.mu.Unlock()
	for _, sf := range files {
		crashtest.Shield(func() { sf.vf.Close(ctx) })
	}
}

// run is the shard's group-commit loop: block for one write, drain the
// window, commit the batch, ack. Exits when the queue closes (server
// shutdown) after draining what was queued.
func (sh *shard) run() {
	defer sh.srv.wg.Done()
	for op := range sh.queue {
		sh.commit(sh.drain(op))
	}
}

// drain collects the batch: everything immediately queued, then whatever
// more arrives within BatchWait, capped at MaxBatchOps. The wait is the
// group-commit gamble — a little wall-clock latency buys writes per
// metadata-log flush (Snapshot's msync batching, NVLog's absorb window).
func (sh *shard) drain(first *writeOp) []*writeOp {
	batch := []*writeOp{first}
	max := sh.srv.cfg.maxBatchOps()
	// Greedy phase: take the backlog without waiting.
	for len(batch) < max {
		select {
		case op, ok := <-sh.queue:
			if !ok {
				return batch
			}
			batch = append(batch, op)
			continue
		default:
		}
		break
	}
	wait := sh.srv.cfg.batchWait()
	if wait <= 0 || len(batch) >= max {
		return batch
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for len(batch) < max {
		select {
		case op, ok := <-sh.queue:
			if !ok {
				return batch
			}
			batch = append(batch, op)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// CommitOp describes one write inside a CommitRecord. Head is the write's
// first 8 data bytes as a little-endian word — enough identity for an
// oracle to tell whose data a recovered region holds without the hook
// retaining every payload.
type CommitOp struct {
	Key  string // tenant-scoped file name
	Off  int64
	Len  int
	Head uint64
}

// CommitRecord describes one attempted WriteMulti group commit: the writes
// it coalesced and the outcome. The torture harness installs a CommitHook
// to learn batch membership — its oracle needs to know which writes were
// promised atomicity together.
type CommitRecord struct {
	Shard int
	Ops   []CommitOp
	Err   error // nil on success; ErrCrashed when the media died mid-commit
}

// commit plans the batch into disjoint sub-batches, applies each file's run
// as one WriteMulti, and acks every op with its outcome.
func (sh *shard) commit(batch []*writeOp) {
	srv := sh.srv
	for _, sub := range planSubBatches(batch) {
		for _, run := range splitByFile(sub) {
			err := sh.commitRun(run)
			for _, op := range run.ops {
				if err == nil {
					srv.obs.cWritesAcked.Add(1)
					op.ten.writesAcked.Add(1)
					op.ten.bytesWritten.Add(int64(len(op.data)))
				} else if op.growth > 0 {
					op.ten.growBytes(-op.growth) // the reservation never landed
				}
				op.done <- err
			}
		}
	}
}

// commitRun applies one file's run of a sub-batch as a single WriteMulti.
func (sh *shard) commitRun(run fileRun) error {
	srv := sh.srv
	if srv.dead() {
		err := srv.deadErr()
		srv.hook(CommitRecord{Shard: sh.idx, Ops: recordOps(run), Err: err})
		return err
	}
	updates := make([]core.Update, len(run.ops))
	for i, op := range run.ops {
		updates[i] = core.Update{Off: op.off, Data: op.data}
	}
	var err error
	crashtest.Shield(func() { err = run.sf.mw.WriteMulti(sh.ctx, updates) })
	if sh.dev.Crashed() {
		srv.noteCrash()
		err = ErrCrashed
	}
	if err == nil {
		srv.obs.hBatchSize.Observe(int64(len(run.ops)))
		srv.obs.cGroupCommits.Add(1)
	}
	srv.hook(CommitRecord{Shard: sh.idx, Ops: recordOps(run), Err: err})
	return err
}

func recordOps(run fileRun) []CommitOp {
	ops := make([]CommitOp, len(run.ops))
	for i, op := range run.ops {
		n := len(op.data)
		if n > 8 {
			n = 8
		}
		var head uint64
		for b := n - 1; b >= 0; b-- {
			head = head<<8 | uint64(op.data[b])
		}
		ops[i] = CommitOp{Key: run.sf.key, Off: op.off, Len: len(op.data), Head: head}
	}
	return ops
}

// mergeObs copies the shard FS's registry snapshot into out under a
// "shard<i>." prefix.
func (sh *shard) mergeObs(out *obs.Snapshot) {
	snap := sh.fs.Obs().Snapshot()
	prefix := fmt.Sprintf("shard%d.", sh.idx)
	for k, v := range snap.Values {
		out.Values[prefix+k] = v
	}
	for k, h := range snap.Hists {
		if out.Hists == nil {
			out.Hists = make(map[string]obs.HistSnapshot)
		}
		out.Hists[prefix+k] = h
	}
}
