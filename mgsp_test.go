package mgsp_test

import (
	"bytes"
	"fmt"
	"testing"

	"mgsp"
)

// TestPublicAPIQuickstart exercises the documented package-level flow.
func TestPublicAPIQuickstart(t *testing.T) {
	dev := mgsp.NewDevice(64<<20, mgsp.ZeroCosts())
	fs, err := mgsp.New(dev, mgsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := mgsp.NewCtx(0, 42)
	f, err := fs.Create(ctx, "data")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("mgsp!"), 1000)
	if _, err := f.WriteAt(ctx, payload, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip failed")
	}
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Crash and recover through the public API.
	dev.Recover()
	fs2, err := mgsp.Mount(ctx, dev, mgsp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Open(ctx, "data")
	if err != nil {
		t.Fatal(err)
	}
	f2.ReadAt(ctx, got, 0)
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across recovery")
	}
	if _, err := fs2.Open(ctx, "nope"); err != mgsp.ErrNotExist {
		t.Fatalf("Open(missing) = %v", err)
	}
}

func TestPublicAPIMultiWriter(t *testing.T) {
	dev := mgsp.NewDevice(32<<20, mgsp.ZeroCosts())
	fs, _ := mgsp.New(dev, mgsp.DefaultOptions())
	ctx := mgsp.NewCtx(0, 1)
	f, _ := fs.Create(ctx, "f")
	f.WriteAt(ctx, make([]byte, 32768), 0)

	mw, ok := f.(mgsp.MultiWriter)
	if !ok {
		t.Fatal("MGSP handle does not implement MultiWriter")
	}
	if err := mw.WriteMulti(ctx, []mgsp.Update{
		{Off: 0, Data: []byte("head")},
		{Off: 30000, Data: []byte("tail")},
	}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	f.ReadAt(ctx, buf, 30000)
	if string(buf) != "tail" {
		t.Fatalf("got %q", buf)
	}
}

func TestPublicAPILockModes(t *testing.T) {
	opts := mgsp.DefaultOptions()
	opts.Locking = mgsp.LockFile
	dev := mgsp.NewDevice(16<<20, mgsp.ZeroCosts())
	fs, err := mgsp.New(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Options().Locking != mgsp.LockFile {
		t.Fatal("lock mode not applied")
	}
}

// Example demonstrates the basic MGSP lifecycle: failure-atomic writes with
// no fsync, crash, recovery.
func Example() {
	dev := mgsp.NewDevice(64<<20, mgsp.ZeroCosts())
	fs, _ := mgsp.New(dev, mgsp.DefaultOptions())
	ctx := mgsp.NewCtx(0, 1)

	f, _ := fs.Create(ctx, "ledger")
	f.WriteAt(ctx, []byte("balance=42"), 0) // synchronized atomic operation

	dev.Recover() // power failure + restart
	fs2, _ := mgsp.Mount(ctx, dev, mgsp.DefaultOptions())
	f2, _ := fs2.Open(ctx, "ledger")
	buf := make([]byte, 10)
	f2.ReadAt(ctx, buf, 0)
	fmt.Println(string(buf))
	// Output: balance=42
}
