// Snapshots: freeze a file in O(metadata) time while writers keep going,
// then clone the frozen image into a new file — the consistent-backup
// pattern snapshots exist for. The snapshot is copy-on-write over the
// shadow tree: taking it writes one metadata-log entry, and only blocks
// the writers actually touch afterwards are relocated.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"mgsp"
	"mgsp/internal/snapshot"
)

func main() {
	dev := mgsp.NewDevice(256<<20, mgsp.DefaultCosts())
	fs, err := mgsp.New(dev, mgsp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ctx := mgsp.NewCtx(0, 42)

	// Lay out a 16 MiB "database" file.
	const fileSize = 16 << 20
	f, err := fs.Create(ctx, "db.dat")
	if err != nil {
		log.Fatal(err)
	}
	img := bytes.Repeat([]byte("committed-state "), fileSize/16)
	if _, err := f.WriteAt(ctx, img, 0); err != nil {
		log.Fatal(err)
	}

	// Take the snapshot: constant media cost no matter the file size.
	mgr := snapshot.New(fs)
	before := dev.Stats().MediaWriteBytes.Load()
	id, err := mgr.Take(ctx, "db.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %d of %d MiB taken for %d media bytes\n",
		id, fileSize>>20, dev.Stats().MediaWriteBytes.Load()-before)

	// Writers keep hammering the live file while we clone the frozen image.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := mgsp.NewCtx(10+w, int64(w))
			junk := bytes.Repeat([]byte{0xA0 + byte(w)}, 4096)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := wctx.Rand.Int63n(fileSize/4096) * 4096
				if _, err := f.WriteAt(wctx, junk, off); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}

	if err := mgr.Clone(ctx, "db.dat", id, "backup.dat"); err != nil {
		log.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// The clone is the exact pre-snapshot image, untorn by the writers.
	bf, err := fs.Open(ctx, "backup.dat")
	if err != nil {
		log.Fatal(err)
	}
	got := make([]byte, fileSize)
	if _, err := bf.ReadAt(ctx, got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		log.Fatal("clone was torn by concurrent writers!")
	}
	fmt.Println("clone matches the frozen image exactly — writers never blocked")

	infos, err := fs.Snapshots(ctx, "db.dat")
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range infos {
		fmt.Printf("snapshot %d: frozen-size=%d MiB, %d blocks pinned by copy-on-write\n",
			s.ID, s.Size>>20, s.PinnedBlocks)
	}

	// Drop the snapshot: pins are released and the space is reclaimed.
	if err := mgr.Drop(ctx, "db.dat", id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("snapshot dropped; pinned blocks reclaimed")
}
