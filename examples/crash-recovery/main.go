// crash-recovery sweeps crash points through a burst of MGSP writes and
// verifies operation-level atomicity at every single one: after each crash
// and remount, the file must reflect a clean operation boundary — committed
// writes present, the interrupted write invisible, never a torn mix.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mgsp"
)

const fileSize = 256 * 1024

func main() {
	checked, crashes := 0, 0
	for fail := int64(1); ; fail += 3 {
		dev := mgsp.NewDevice(16<<20, mgsp.ZeroCosts())
		fs, err := mgsp.New(dev, mgsp.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		ctx := mgsp.NewCtx(0, fail)
		f, err := fs.Create(ctx, "f")
		if err != nil {
			log.Fatal(err)
		}
		f.WriteAt(ctx, make([]byte, fileSize), 0)

		// Scripted op sequence (deterministic per fail point).
		type op struct {
			off int64
			n   int
			pat byte
		}
		var script []op
		for i := 0; i < 30; i++ {
			script = append(script, op{
				off: int64(i*7919) % (fileSize - 40000),
				n:   1 + (i*2711)%32768,
				pat: byte(i + 1),
			})
		}

		dev.ArmCrash(fail, fail)
		completed := -1
		func() {
			defer func() { recover() }()
			for i, o := range script {
				f.WriteAt(ctx, bytes.Repeat([]byte{o.pat}, o.n), o.off)
				completed = i
			}
		}()
		if !dev.Crashed() {
			fmt.Printf("swept %d crash points (%d verified boundaries): all atomic\n", crashes, checked)
			return
		}
		crashes++
		dev.Recover()

		rctx := mgsp.NewCtx(1, fail)
		fs2, err := mgsp.Mount(rctx, dev, mgsp.DefaultOptions())
		if err != nil {
			log.Fatalf("fail=%d: mount: %v", fail, err)
		}
		f2, err := fs2.Open(rctx, "f")
		if err != nil {
			log.Fatalf("fail=%d: %v", fail, err)
		}
		got := make([]byte, fileSize)
		f2.ReadAt(rctx, got, 0)

		// Acceptable states: ops 0..completed, optionally plus the next op
		// (committed just before the crash).
		ref := make([]byte, fileSize)
		apply := func(k int) {
			o := script[k]
			for j := 0; j < o.n; j++ {
				ref[o.off+int64(j)] = o.pat
			}
		}
		for i := 0; i <= completed; i++ {
			apply(i)
		}
		ok := bytes.Equal(got, ref)
		if !ok && completed+1 < len(script) {
			apply(completed + 1)
			ok = bytes.Equal(got, ref)
		}
		if !ok {
			log.Fatalf("fail=%d: recovered state is not an operation boundary", fail)
		}
		checked++
	}
}
