// kvstore builds a crash-safe key-value store directly on MGSP's
// failure-atomic writes — the class of application the paper's introduction
// motivates: because every WriteAt is a synchronized atomic operation, the
// store needs no write-ahead log of its own.
//
// Layout: a fixed table of 4 KiB buckets, each holding up to 63 slots of
// (key-hash, value offset) plus a value heap appended at the file tail.
// Every update rewrites one bucket atomically; a crash between the heap
// append and the bucket write leaves only unreachable heap garbage.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"

	"mgsp"
)

const (
	buckets    = 1024
	bucketSize = 4096
	slotSize   = 64 // hash(8) + off(8) + klen(4) + vlen(4) + key(40)
	slotsPer   = bucketSize / slotSize
	heapStart  = buckets * bucketSize
)

// Store is the crash-safe KV store.
type Store struct {
	f       mgsp.File
	heapEnd int64
}

// open creates or reopens the store on the given file system.
func open(ctx *mgsp.Ctx, fs *mgsp.FS) (*Store, error) {
	f, err := fs.Open(ctx, "kv.db")
	if err == mgsp.ErrNotExist {
		f, err = fs.Create(ctx, "kv.db")
		if err == nil {
			// Zero the bucket table; the heap begins right after.
			zero := make([]byte, bucketSize)
			for b := 0; b < buckets; b++ {
				if _, err = f.WriteAt(ctx, zero, int64(b)*bucketSize); err != nil {
					break
				}
			}
		}
	}
	if err != nil {
		return nil, err
	}
	end := f.Size()
	if end < heapStart {
		end = heapStart
	}
	return &Store{f: f, heapEnd: end}, nil
}

func bucketOf(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(h.Sum64() % buckets)
}

func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte("k"))
	h.Write([]byte(key))
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

// Put inserts or updates a key. Crash-safety: the value is appended to the
// heap first (invisible), then the 4 KiB bucket is rewritten in one atomic
// MGSP write that publishes it.
func (s *Store) Put(ctx *mgsp.Ctx, key, value string) error {
	if len(key) > 40 {
		return fmt.Errorf("key too long")
	}
	valOff := s.heapEnd
	if _, err := s.f.WriteAt(ctx, []byte(value), valOff); err != nil {
		return err
	}
	s.heapEnd += int64(len(value))

	b := bucketOf(key)
	buf := make([]byte, bucketSize)
	if _, err := s.f.ReadAt(ctx, buf, b*bucketSize); err != nil {
		return err
	}
	h := keyHash(key)
	slot := -1
	for i := 0; i < slotsPer; i++ {
		sh := binary.LittleEndian.Uint64(buf[i*slotSize:])
		if sh == h || (sh == 0 && slot < 0) {
			slot = i
			if sh == h {
				break
			}
		}
	}
	if slot < 0 {
		return fmt.Errorf("bucket full for %q", key)
	}
	off := slot * slotSize
	binary.LittleEndian.PutUint64(buf[off:], h)
	binary.LittleEndian.PutUint64(buf[off+8:], uint64(valOff))
	binary.LittleEndian.PutUint32(buf[off+16:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[off+20:], uint32(len(value)))
	copy(buf[off+24:off+64], key)
	// One failure-atomic bucket write commits the update.
	_, err := s.f.WriteAt(ctx, buf, b*bucketSize)
	return err
}

// Get looks a key up.
func (s *Store) Get(ctx *mgsp.Ctx, key string) (string, bool, error) {
	b := bucketOf(key)
	buf := make([]byte, bucketSize)
	if _, err := s.f.ReadAt(ctx, buf, b*bucketSize); err != nil {
		return "", false, err
	}
	h := keyHash(key)
	for i := 0; i < slotsPer; i++ {
		if binary.LittleEndian.Uint64(buf[i*slotSize:]) != h {
			continue
		}
		off := i * slotSize
		valOff := int64(binary.LittleEndian.Uint64(buf[off+8:]))
		vlen := binary.LittleEndian.Uint32(buf[off+20:])
		val := make([]byte, vlen)
		if _, err := s.f.ReadAt(ctx, val, valOff); err != nil {
			return "", false, err
		}
		return string(val), true, nil
	}
	return "", false, nil
}

func main() {
	dev := mgsp.NewDevice(64<<20, mgsp.DefaultCosts())
	fs, err := mgsp.New(dev, mgsp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ctx := mgsp.NewCtx(0, 1)
	kv, err := open(ctx, fs)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("user:%04d", i)
		if err := kv.Put(ctx, k, fmt.Sprintf("profile-data-for-%04d", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("500 keys written, each update one atomic bucket write")

	// Crash in the middle of an update burst.
	dev.ArmCrash(100, 9)
	func() {
		defer func() { recover() }()
		for i := 0; i < 500; i++ {
			kv.Put(ctx, fmt.Sprintf("user:%04d", i), fmt.Sprintf("UPDATED-%04d", i))
		}
	}()
	fmt.Println("crash injected mid-update-burst")
	dev.Recover()

	rctx := mgsp.NewCtx(1, 2)
	fs2, err := mgsp.Mount(rctx, dev, mgsp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	kv2, err := open(rctx, fs2)
	if err != nil {
		log.Fatal(err)
	}
	old, updated := 0, 0
	for i := 0; i < 500; i++ {
		v, ok, err := kv2.Get(rctx, fmt.Sprintf("user:%04d", i))
		if err != nil || !ok {
			log.Fatalf("key %d lost after crash (ok=%v err=%v)", i, ok, err)
		}
		switch {
		case len(v) > 7 && v[:7] == "UPDATED":
			updated++
		default:
			old++
		}
	}
	fmt.Printf("after recovery: %d keys updated, %d keys at the old value, 0 corrupted\n", updated, old)
	fmt.Println("every key readable: MGSP's per-write atomicity made the store crash-safe without a WAL")
}
