// sqlite-tpcc runs the paper's real-application experiment (Figure 12) as a
// standalone demo: the TPC-C mix on the SQLite-like engine, on MGSP versus
// Ext4-DAX, in both journal modes. With journal_mode=OFF the database has no
// crash protection of its own — MGSP's operation-level atomicity supplies
// it, and removing the database's own logging is where the paper's 36.5%
// gain comes from.
package main

import (
	"fmt"
	"log"

	"mgsp/internal/core"
	"mgsp/internal/ext4"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/sqlite"
	"mgsp/internal/tpcc"
	"mgsp/internal/vfs"
)

func main() {
	cfg := tpcc.DefaultConfig()
	fmt.Printf("TPC-C: %d warehouses, %d districts, %d customers/district, %d items, %d transactions\n\n",
		cfg.Warehouses, cfg.Districts, cfg.Customers, cfg.Items, cfg.Transactions)

	systems := []struct {
		name string
		mk   func() vfs.FS
	}{
		{"Ext4-DAX", func() vfs.FS { return ext4.New(nvm.New(512<<20, sim.DefaultCosts()), ext4.DAX) }},
		{"MGSP", func() vfs.FS {
			return core.MustNew(nvm.New(512<<20, sim.DefaultCosts()), core.DefaultOptions())
		}},
	}
	for _, mode := range []sqlite.JournalMode{sqlite.WAL, sqlite.Off} {
		fmt.Printf("journal_mode=%s\n", mode)
		var base float64
		for _, sys := range systems {
			res, err := tpcc.Run(sys.mk(), mode, cfg)
			if err != nil {
				log.Fatal(err)
			}
			rel := 1.0
			if base == 0 {
				base = res.TpmC
			} else {
				rel = res.TpmC / base
			}
			fmt.Printf("  %-10s %10.0f tpmC  (%d new-orders, %d aborted, %.2fx)\n",
				sys.name, res.TpmC, res.NewOrders, res.Aborted, rel)
		}
		fmt.Println()
	}
}
