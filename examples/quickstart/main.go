// Quickstart: create an MGSP file system on a simulated NVM device, write
// failure-atomically, crash, and recover — the 60-second tour of the
// public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mgsp"
)

func main() {
	// A 256 MiB simulated Optane device with the calibrated cost model.
	dev := mgsp.NewDevice(256<<20, mgsp.DefaultCosts())
	fs, err := mgsp.New(dev, mgsp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ctx := mgsp.NewCtx(0, 42)

	f, err := fs.Create(ctx, "hello.dat")
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("shadow-logging! "), 4096)
	t0 := ctx.Now()
	if _, err := f.WriteAt(ctx, payload, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d KiB failure-atomically in %.1f us of virtual time\n",
		len(payload)/1024, float64(ctx.Now()-t0)/1000)

	// No fsync needed: every MGSP operation is already synchronized.
	// Simulate pulling the power.
	dev.Recover() // machine restart: volatile state discarded

	rctx := mgsp.NewCtx(1, 7)
	fs2, err := mgsp.Mount(rctx, dev, mgsp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remounted after crash in %.2f ms of virtual time\n", float64(rctx.Now())/1e6)

	f2, err := fs2.Open(rctx, "hello.dat")
	if err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(rctx, got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("data lost!")
	}
	fmt.Println("all data intact after crash — no fsync ever called")

	// Media accounting: shadow logging means ~1 byte written per user byte.
	fmt.Printf("media bytes written so far: %.1f MiB\n",
		float64(dev.Stats().MediaWriteBytes.Load())/(1<<20))
}
