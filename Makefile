GO ?= go
FUZZTIME ?= 15s

.PHONY: ci vet build test race torture fuzz bench cover

ci: vet build test race ## everything CI runs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full race gate: every package, race detector on, test order shuffled
# so inter-test state dependencies cannot hide. This is the documented CI
# gate for concurrency changes — `make race` must be green before merging
# anything that touches locking, the metadata log, or recovery.
race:
	$(GO) test -race -shuffle=on ./...

# The concurrent crash-consistency torture harness on its own: ~200 sampled
# (seed, crash-index) points with 4 racing writers per run, op-atomicity
# oracle checked after every recovery. Violations print a deterministic
# `go test -run TestTortureReplay -torture.*` repro line.
torture:
	$(GO) test -race -count=1 ./internal/torture

# Native fuzzing of the metadata-log record decoder: corrupted entries must
# be rejected by checksum, never replayed, never panic. Short budget by
# default; raise with e.g. `make fuzz FUZZTIME=5m`.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeEntry -fuzztime=$(FUZZTIME) ./internal/core

# Coverage over the crash-consistency core. Keep internal/core above ~80%:
# uncovered lines there are usually recovery/commit paths that only a new
# fail-point sweep would exercise — add the sweep, not an exclusion.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/core,./internal/alloc,./internal/snapshot ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...
