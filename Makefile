GO ?= go
FUZZTIME ?= 15s

.PHONY: ci vet build test race torture fuzz bench cover bench-json bench-smoke

ci: vet build test race ## everything CI runs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full race gate: every package, race detector on, test order shuffled
# so inter-test state dependencies cannot hide. This is the documented CI
# gate for concurrency changes — `make race` must be green before merging
# anything that touches locking, the metadata log, or recovery. The bench
# smoke ride-along proves the measurement harness end to end (runs every
# experiment briefly and schema-validates the emitted JSON).
race: bench-smoke
	$(GO) test -race -shuffle=on ./...

# A seconds-long slice of every experiment with -json output, validated
# against the mgsp-bench/v1 schema by mgspstat. Catches harness or schema
# rot before it reaches a real (minutes-long) bench run.
bench-smoke:
	$(GO) run ./cmd/mgspbench -exp all -scale smoke -json BENCH_smoke.json >/dev/null
	$(GO) run ./cmd/mgspstat -validate BENCH_smoke.json

# The instrumented core experiment at quick scale, emitting the full obs
# payload (throughput, latency quantiles, WA ratio, contention counters).
bench-json:
	$(GO) run ./cmd/mgspbench -exp core -json BENCH_core.json

# The concurrent crash-consistency torture harness on its own: ~200 sampled
# (seed, crash-index) points with 4 racing writers per run, op-atomicity
# oracle checked after every recovery. Violations print a deterministic
# `go test -run TestTortureReplay -torture.*` repro line.
torture:
	$(GO) test -race -count=1 ./internal/torture

# Native fuzzing of the metadata-log record decoder: corrupted entries must
# be rejected by checksum, never replayed, never panic. Short budget by
# default; raise with e.g. `make fuzz FUZZTIME=5m`.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeEntry -fuzztime=$(FUZZTIME) ./internal/core

# Coverage over the crash-consistency core. Keep internal/core above ~80%:
# uncovered lines there are usually recovery/commit paths that only a new
# fail-point sweep would exercise — add the sweep, not an exclusion.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/core,./internal/alloc,./internal/snapshot ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...
