GO ?= go
FUZZTIME ?= 15s

# Pinned lint-tool versions (make lint). Installed on demand with
# `make lint-tools`; lint skips gracefully when they are absent so the
# target stays usable on network-less machines.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: ci vet vet-report mgspvet lint lint-tools build test race torture fuzz bench cover bench-json bench-smoke serve-smoke

ci: vet vet-report build test race serve-smoke ## everything CI runs

# Static analysis gate: stock go vet plus the project's own interprocedural
# analyzers (the mgspsummary effect-summary engine feeding persistorder,
# crashsafe-locks, lockorder, seqlockver, twostore, atomicfield, checksumpub,
# staleannot) through the vet -vettool protocol. Must exit 0 on the tree; see
# DESIGN.md §15 for each invariant and the //mgsp: annotation grammar.
vet: mgspvet
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath bin/mgspvet) ./...

# The vettool rebuild is keyed on a content hash of the analyzer sources, so
# `make vet` on an unchanged tree skips even the no-op `go build` invocation.
MGSPVET_HASH := $(shell find cmd/mgspvet internal/analysis -name '*.go' -not -path '*/testdata/*' -print0 | LC_ALL=C sort -z | xargs -0 cat go.mod | cksum | cut -d' ' -f1)
MGSPVET_STAMP := bin/.mgspvet-$(MGSPVET_HASH)

mgspvet: $(MGSPVET_STAMP)

$(MGSPVET_STAMP):
	$(GO) build -o bin/mgspvet ./cmd/mgspvet
	@rm -f $(filter-out $(MGSPVET_STAMP),$(wildcard bin/.mgspvet-*))
	@touch $@

# Machine-readable findings artifact: every mgspvet diagnostic — including
# the ones an //mgsp: annotation suppresses — as deduped, deterministically
# sorted JSONL in VET_REPORT.jsonl. The fresh -mgspsummary.stamp value busts
# go vet's per-package result cache so the append sink sees every package on
# every run; scripts/vetreport merges the raw interleaved stream.
vet-report: mgspvet
	@rm -f VET_raw.jsonl
	$(GO) vet -vettool=$(abspath bin/mgspvet) \
		-mgspsummary.report=$(abspath VET_raw.jsonl) \
		-mgspsummary.stamp=$$(date +%s%N) ./...
	$(GO) run ./scripts/vetreport -in VET_raw.jsonl -out VET_REPORT.jsonl
	@rm -f VET_raw.jsonl
	@echo "vet-report: $$(wc -l < VET_REPORT.jsonl) finding(s) -> VET_REPORT.jsonl"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Optional deep lint: staticcheck + govulncheck at pinned versions. Both
# tools need a one-time network install (`make lint-tools`); when they are
# not on PATH the target prints how to get them and succeeds, so `make lint`
# never breaks an offline checkout.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; run 'make lint-tools' (network required)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; run 'make lint-tools' (network required)"; \
	fi

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# The full race gate: every package, race detector on, test order shuffled
# so inter-test state dependencies cannot hide. This is the documented CI
# gate for concurrency changes — `make race` must be green before merging
# anything that touches locking, the metadata log, or recovery. It starts
# with `make vet` because crashsafe-locks catches the lock-leak class that
# the race detector cannot (leaks only manifest under crash injection). The
# bench smoke ride-along proves the measurement harness end to end (runs
# every experiment briefly and schema-validates the emitted JSON).
race: vet bench-smoke
	$(GO) test -race -shuffle=on ./...

# A seconds-long slice of every experiment with -json output, validated
# against the mgsp-bench/v1 schema by mgspstat. Catches harness or schema
# rot before it reaches a real (minutes-long) bench run.
bench-smoke:
	$(GO) run ./cmd/mgspbench -exp all -scale smoke -json BENCH_smoke.json >/dev/null
	$(GO) run ./cmd/mgspstat -validate BENCH_smoke.json

# End-to-end smoke of the mgspd server path: real process, real TCP, KV +
# ingest workloads through the protocol, live obs fetch, SIGTERM drain, and
# an fsck of the image the shutdown saved. See scripts/serve_smoke.sh.
serve-smoke:
	sh scripts/serve_smoke.sh

# The instrumented core + mixed + many-core ladder experiments at quick
# scale, emitting the full obs payload (throughput, latency quantiles, WA
# ratio, contention counters, cache-tier hit/miss/flush counters, fig10s
# scalability ladder to 4*MaxThreads workers). mgspstat -validate enforces
# the fig10s disjoint-writer try-fail budget (<= 0.05/op).
bench-json:
	$(GO) run ./cmd/mgspbench -exp core,mixed,fig10s -json BENCH_core.json
	$(GO) run ./cmd/mgspstat -validate BENCH_core.json

# The concurrent crash-consistency torture harness on its own: ~200 sampled
# (seed, crash-index) points with 4 racing writers per run, op-atomicity
# oracle checked after every recovery. Violations print a deterministic
# `go test -run TestTortureReplay -torture.*` repro line.
torture:
	$(GO) test -race -count=1 ./internal/torture

# Native fuzzing of the metadata-log decoders: corrupted op entries and
# per-worker area cursors must be rejected by checksum, never replayed,
# never panic. Go runs one fuzz target per invocation, so the budget is
# spent once per decoder. Short budget by default; raise with e.g.
# `make fuzz FUZZTIME=5m`.
fuzz:
	$(GO) test -run='^$$' -fuzz='FuzzDecodeEntry$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='FuzzDecodeCursor$$' -fuzztime=$(FUZZTIME) ./internal/core

# Coverage over the crash-consistency core. Keep internal/core above ~80%:
# uncovered lines there are usually recovery/commit paths that only a new
# fail-point sweep would exercise — add the sweep, not an exclusion.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/core,./internal/alloc,./internal/snapshot ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...
