GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race ## everything CI runs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with real cross-goroutine concurrency: the MGSP
# core (MGL, lock-free metadata log) and the background cleaner.
race:
	$(GO) test -race ./internal/core ./internal/cleaner

bench:
	$(GO) test -bench=. -benchmem ./...
