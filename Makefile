GO ?= go

.PHONY: ci vet build test race bench cover

ci: vet build test race ## everything CI runs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with real cross-goroutine concurrency: the MGSP
# core (MGL, lock-free metadata log, snapshot readers vs writers), the
# background cleaner, the snapshot manager (clone under concurrent writes),
# and the crash sweeps.
race:
	$(GO) test -race ./internal/core ./internal/cleaner ./internal/snapshot ./internal/crashtest

# Coverage over the crash-consistency core. Keep internal/core above ~80%:
# uncovered lines there are usually recovery/commit paths that only a new
# fail-point sweep would exercise — add the sweep, not an exclusion.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/core,./internal/alloc,./internal/snapshot ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...
