// Package mgsp is the public API of the MGSP reproduction: Multi-Granularity
// Shadow Paging for crash-consistent memory-mapped I/O on NVM (Du et al.,
// HPCA 2023).
//
// The package re-exports the simulation substrate and the MGSP core so that
// applications can be written against one import:
//
//	dev := mgsp.NewDevice(256<<20, mgsp.DefaultCosts())
//	fs, _ := mgsp.New(dev, mgsp.DefaultOptions())
//	ctx := mgsp.NewCtx(0, 42)
//	f, _ := fs.Create(ctx, "data")
//	f.WriteAt(ctx, payload, 0) // failure-atomic, synchronized
//	f.Close(ctx)               // write-back + metadata release
//
// Every operation is a synchronized atomic operation: there is no fsync to
// schedule and no double write to hide. After a crash, Mount replays the
// lock-free metadata log and writes the shadow logs back:
//
//	dev.Recover()
//	fs, err := mgsp.Mount(ctx, dev, mgsp.DefaultOptions())
//
// All I/O happens against a simulated NVM device with a calibrated virtual-
// time cost model (see internal/sim and DESIGN.md): results are deterministic
// and preserve the performance shapes reported in the paper.
package mgsp

import (
	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/vfs"
)

// Ctx is a per-worker context carrying the virtual clock and PRNG. Use one
// Ctx per goroutine.
type Ctx = sim.Ctx

// NewCtx returns a worker context with the given id and random seed.
func NewCtx(id int, seed int64) *Ctx { return sim.NewCtx(id, seed) }

// Costs is the hardware/kernel cost model used to charge virtual time.
type Costs = sim.Costs

// DefaultCosts returns the Optane-calibrated cost model used by the paper's
// benchmarks.
func DefaultCosts() Costs { return sim.DefaultCosts() }

// ZeroCosts returns a free cost model (functional testing).
func ZeroCosts() Costs { return sim.ZeroCosts() }

// Device is a simulated byte-addressable NVM device with crash injection
// and media-level accounting.
type Device = nvm.Device

// NewDevice creates a device of the given size.
func NewDevice(size int64, costs Costs) *Device { return nvm.New(size, costs) }

// Options configures MGSP (granularity ladder, locking strategy, and the
// paper's optional optimizations); see DefaultOptions.
type Options = core.Options

// LockMode selects MGSP's isolation strategy.
type LockMode = core.LockMode

// Lock modes.
const (
	LockMGL  = core.LockMGL
	LockFile = core.LockFile
)

// DefaultOptions returns the full MGSP configuration evaluated in the paper:
// degree-64 radix tree, 512-byte minimum update units, multi-granularity
// shadow logging, MGL with greedy locking and lazy intention cleaning, and
// the minimum search tree cache.
func DefaultOptions() Options { return core.DefaultOptions() }

// FS is a mounted MGSP file system.
type FS = core.FS

// File is an open file handle. ReadAt/WriteAt are failure-atomic and
// synchronized; Fsync is a no-op fence; Close writes the shadow logs back.
type File = vfs.File

// ErrNotExist is returned when opening a file that does not exist.
var ErrNotExist = vfs.ErrNotExist

// Update is one range of a multi-range atomic write.
type Update = core.Update

// MultiWriter is implemented by MGSP file handles: WriteMulti applies
// several disjoint updates as one failure-atomic operation (the
// transaction-level atomicity the paper lists as future work — it falls out
// of the metadata-log commit protocol naturally).
//
//	f, _ := fs.Create(ctx, "db")
//	f.(mgsp.MultiWriter).WriteMulti(ctx, []mgsp.Update{...})
type MultiWriter interface {
	WriteMulti(ctx *Ctx, updates []Update) error
}

// SnapID identifies one snapshot of one file.
type SnapID = core.SnapID

// SnapInfo describes a live snapshot: its frozen size and the pin footprint
// (directory records and log blocks) it keeps alive.
type SnapInfo = core.SnapInfo

// Snapshot errors. Snapshot/OpenSnapshot/DropSnapshot/Snapshots are methods
// on FS; frozen images are read through ordinary File handles. See
// internal/snapshot for the clone-capable manager built on top.
var (
	// ErrHasSnapshots is returned by Remove, Truncate, and Create-over-
	// existing while the file still has live snapshots.
	ErrHasSnapshots = core.ErrHasSnapshots
	// ErrSnapshotNotFound is returned for an unknown snapshot id.
	ErrSnapshotNotFound = core.ErrSnapshotNotFound
	// ErrSnapshotBusy is returned by DropSnapshot while handles are open.
	ErrSnapshotBusy = core.ErrSnapshotBusy
)

// New formats a fresh MGSP file system over the device.
func New(dev *Device, opts Options) (*FS, error) { return core.New(dev, opts) }

// Mount recovers an MGSP file system from a device image after a crash:
// interrupted operations are completed from the metadata log (or rolled
// back if uncommitted) and all logs are written back (§III-D of the paper).
func Mount(ctx *Ctx, dev *Device, opts Options) (*FS, error) {
	return core.Mount(ctx, dev, opts)
}
