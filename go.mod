module mgsp

go 1.22
