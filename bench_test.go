// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs one experiment per iteration and reports the headline
// numbers as custom metrics (virtual-time throughput ratios), so
//
//	go test -bench=. -benchmem
//
// reproduces the full result set. For the complete printed tables use
// cmd/mgspbench.
package mgsp_test

import (
	"testing"

	"mgsp/internal/bench"
	"mgsp/internal/fio"
	"mgsp/internal/sqlite"
)

func benchScale() bench.Scale {
	sc := bench.Quick()
	return sc
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(t.Cell("Ext4-DAX", "throughput"), "Ext4-DAX-MiBps")
			b.ReportMetric(t.Cell("Libnvmmio-sync", "throughput"), "Libnvmmio-sync-MiBps")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(t.Cell("fsync-1", "MGSP"), "MGSP-fsync1-MiBps")
			b.ReportMetric(t.Cell("fsync-1", "Libnvmmio"), "Libnvmmio-fsync1-MiBps")
			b.ReportMetric(t.Cell("fsync-1", "Ext4-DAX"), "Ext4DAX-fsync1-MiBps")
		}
	}
}

func benchmarkFig8(b *testing.B, op fio.Op) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig8(benchScale(), op)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, size := range []string{"1K", "4K", "256K"} {
				b.ReportMetric(t.Cell(size, "MGSP")/t.Cell(size, "Ext4-DAX"), size+"-MGSP-vs-Ext4DAX")
				b.ReportMetric(t.Cell(size, "MGSP")/t.Cell(size, "Libnvmmio"), size+"-MGSP-vs-Libnvmmio")
			}
		}
	}
}

func BenchmarkFig8aSeqWrite(b *testing.B)  { benchmarkFig8(b, fio.SeqWrite) }
func BenchmarkFig8bRandWrite(b *testing.B) { benchmarkFig8(b, fio.RandWrite) }
func BenchmarkFig8cSeqRead(b *testing.B)   { benchmarkFig8(b, fio.SeqRead) }
func BenchmarkFig8dRandRead(b *testing.B)  { benchmarkFig8(b, fio.RandRead) }

func BenchmarkFig9Mixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range t.Rows {
				b.ReportMetric(t.Cell(r, "MGSP"), r+"-MGSP-vs-Ext4DAX")
			}
		}
	}
}

func benchmarkFig10(b *testing.B, bs int, op fio.Op) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig10(benchScale(), bs, op)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := t.Rows[len(t.Rows)-1]
			for _, sys := range t.Cols {
				b.ReportMetric(t.Cell(last, sys)/t.Cell("1-threads", sys), sys+"-scaling")
			}
		}
	}
}

func BenchmarkFig10Seq1K(b *testing.B)   { benchmarkFig10(b, 1024, fio.SeqWrite) }
func BenchmarkFig10Seq4K(b *testing.B)   { benchmarkFig10(b, 4096, fio.SeqWrite) }
func BenchmarkFig10Seq16K(b *testing.B)  { benchmarkFig10(b, 16<<10, fio.SeqWrite) }
func BenchmarkFig10Rand4K(b *testing.B)  { benchmarkFig10(b, 4096, fio.RandWrite) }
func BenchmarkFig10Rand16K(b *testing.B) { benchmarkFig10(b, 16<<10, fio.RandWrite) }

func benchmarkFig11(b *testing.B, mode sqlite.JournalMode) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig11(benchScale(), mode)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, op := range t.Rows {
				b.ReportMetric(t.Cell(op, "MGSP")/t.Cell(op, "Ext4-DAX"), op+"-MGSP-vs-Ext4DAX")
			}
		}
	}
}

func BenchmarkFig11WAL(b *testing.B) { benchmarkFig11(b, sqlite.WAL) }
func BenchmarkFig11OFF(b *testing.B) { benchmarkFig11(b, sqlite.Off) }

func BenchmarkFig12TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(t.Cell("OFF", "MGSP")/t.Cell("OFF", "Ext4-DAX"), "OFF-MGSP-vs-Ext4DAX")
			b.ReportMetric(t.Cell("OFF", "MGSP")/t.Cell("OFF", "Libnvmmio"), "OFF-MGSP-vs-Libnvmmio")
			b.ReportMetric(t.Cell("OFF", "MGSP")/t.Cell("OFF", "NOVA"), "OFF-MGSP-vs-NOVA")
		}
	}
}

func BenchmarkFig13Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range t.Rows {
				b.ReportMetric(t.Cell(c, "+optimizations"), c+"-full-vs-Ext4DAX")
			}
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.TableII(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, size := range t.Rows {
				b.ReportMetric(t.Cell(size, "Libnvmmio"), size+"-Libnvmmio-WA")
				b.ReportMetric(t.Cell(size, "MGSP"), size+"-MGSP-WA")
			}
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Recovery(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := t.Rows[len(t.Rows)-1]
			b.ReportMetric(t.Cell(last, "recovery"), last+"-recovery-ms")
		}
	}
}

func BenchmarkExtAtomic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.ExtAtomic(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(t.Cell("ATOMIC", "MGSP")/t.Cell("OFF", "MGSP"), "ATOMIC-vs-OFF")
			b.ReportMetric(t.Cell("ATOMIC", "MGSP")/t.Cell("WAL", "MGSP"), "ATOMIC-vs-WAL")
		}
	}
}

func BenchmarkCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, metrics, _, err := bench.Core(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(t.Cell("seq-write-fsync1", "MiB/s"), "seq-write-MiB/s")
			b.ReportMetric(metrics["rand-write/wa.ratio"], "rand-write-WA")
		}
	}
}
