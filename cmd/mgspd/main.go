// Command mgspd serves sharded, multi-tenant MGSP namespaces over the
// length-prefixed binary protocol (see internal/server and DESIGN.md §12),
// group-committing concurrent client writes and shedding load when the
// cleaner falls behind.
//
//	mgspd                              serve on :7670, obs on :7671
//	mgspd -addr :9000 -obs :9001       explicit ports (use :0 for ephemeral)
//	mgspd -addr-file a -obs-addr-file b
//	                                   write the bound addresses to files
//	                                   (scripts using :0 read them back)
//	mgspd -shards 4 -dev-size 268435456
//	                                   4 shards of 256 MiB each
//	mgspd -cleaner-interval 1000000 -delay-log-blocks 2048 -shed-log-blocks 4096
//	                                   enable the cleaner and backpressure
//	mgspd -img-dir /tmp/imgs           save shard images there on shutdown
//	                                   (mgspfsck -load reads them)
//
// The obs side port serves /metrics (Prometheus) and /metrics.json
// (mgsp-obs/v1) — `mgspstat -url http://host:PORT` works against it.
// SIGINT/SIGTERM drain cleanly: queued writes commit, files close
// (write-back), then images are saved.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"mgsp/internal/core"
	"mgsp/internal/server"
)

func main() {
	addr := flag.String("addr", ":7670", "protocol listen address")
	obsAddr := flag.String("obs", ":7671", "obs HTTP listen address (empty disables)")
	addrFile := flag.String("addr-file", "", "write the bound protocol address to this file")
	obsAddrFile := flag.String("obs-addr-file", "", "write the bound obs address to this file")
	shards := flag.Int("shards", 1, "number of shards (one MGSP file system each)")
	devSize := flag.Int64("dev-size", 64<<20, "per-shard device size in bytes")
	seed := flag.Int64("seed", 1, "simulation seed")
	batchWait := flag.Duration("batch-wait", 0, "group-commit linger (0 = 200µs default)")
	maxBatch := flag.Int("max-batch", 0, "max writes per group commit (0 = 64 default)")
	cleanerInterval := flag.Int64("cleaner-interval", 0, "cleaner pass interval in virtual ns (0 = off)")
	cleanerBudget := flag.Int64("cleaner-budget", 0, "blocks reclaimed per cleaner pass (0 = unbounded)")
	delayLog := flag.Int64("delay-log-blocks", 0, "delay writes when shard log blocks reach this (0 = off)")
	shedLog := flag.Int64("shed-log-blocks", 0, "shed writes when shard log blocks reach this (0 = off)")
	delayLag := flag.Int64("delay-lag-blocks", 0, "delay writes when cleaner lag reaches this (0 = off)")
	shedLag := flag.Int64("shed-lag-blocks", 0, "shed writes when cleaner lag reaches this (0 = off)")
	quotaBytes := flag.Int64("quota-bytes", 0, "per-tenant byte quota (0 = unlimited)")
	quotaFiles := flag.Int64("quota-files", 0, "per-tenant open-file quota (0 = unlimited)")
	quotaInflight := flag.Int64("quota-inflight", 0, "per-tenant in-flight op quota (0 = unlimited)")
	imgDir := flag.String("img-dir", "", "save shard device images here on shutdown")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "mgspd: unexpected arguments; see -h")
		os.Exit(2)
	}

	opts := core.DefaultOptions()
	opts.CleanerInterval = *cleanerInterval
	opts.CleanerBudget = *cleanerBudget

	srv, err := server.New(server.Config{
		Shards:         *shards,
		DevSize:        *devSize,
		FSOpts:         opts,
		Seed:           *seed,
		BatchWait:      *batchWait,
		MaxBatchOps:    *maxBatch,
		DelayLogBlocks: *delayLog,
		ShedLogBlocks:  *shedLog,
		DelayLagBlocks: *delayLag,
		ShedLagBlocks:  *shedLag,
		DefaultQuota: server.Quota{
			MaxBytes:    *quotaBytes,
			MaxFiles:    *quotaFiles,
			MaxInFlight: *quotaInflight,
		},
	})
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if err := publishAddr(*addrFile, l.Addr().String()); err != nil {
		fatal(err)
	}
	fmt.Printf("mgspd: serving on %s (%d shard(s), %d MiB each)\n",
		l.Addr(), *shards, *devSize>>20)

	var obsL net.Listener
	if *obsAddr != "" {
		if obsL, err = net.Listen("tcp", *obsAddr); err != nil {
			fatal(err)
		}
		if err := publishAddr(*obsAddrFile, obsL.Addr().String()); err != nil {
			fatal(err)
		}
		fmt.Printf("mgspd: obs on http://%s/metrics.json\n", obsL.Addr())
		go http.Serve(obsL, srv.Handler())
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("mgspd: %v, draining\n", s)
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	}

	if err := srv.Close(); err != nil {
		fatal(err)
	}
	if obsL != nil {
		obsL.Close()
	}
	if *imgDir != "" {
		for i := 0; i < srv.Shards(); i++ {
			path := filepath.Join(*imgDir, fmt.Sprintf("shard%d.img", i))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := srv.SaveImage(i, f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("mgspd: saved %s\n", path)
		}
	}
	fmt.Println("mgspd: bye")
}

// publishAddr writes the bound address for scripts that listened on :0.
func publishAddr(path, addr string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte(addr+"\n"), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mgspd:", err)
	os.Exit(1)
}
