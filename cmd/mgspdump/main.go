// Command mgspdump inspects a saved MGSP device image (see cmd/mgspfsck
// -save): it prints the file table, each file's shadow-log tree with bitmap
// states, the metadata-log entries, and the snapshot table — live snapshot
// ids with their frozen sizes, creation epochs, and pinned block counts,
// plus any drop still in progress — the fsck-style forensic view of the
// structures described in §III of the paper.
//
//	mgspfsck -save crash.img
//	mgspdump crash.img
package main

import (
	"flag"
	"fmt"
	"os"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func main() {
	degree := flag.Int("degree", 64, "radix degree the image was written with")
	subBits := flag.Int("subbits", 8, "leaf valid bits the image was written with")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mgspdump [-degree N] [-subbits N] <image>")
		os.Exit(2)
	}
	r, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	defer r.Close()
	dev, err := nvm.LoadImage(r, func(size int64) *nvm.Device {
		return nvm.New(size, sim.ZeroCosts())
	})
	if err != nil {
		fail(err)
	}
	opts := core.DefaultOptions()
	opts.Degree = *degree
	opts.SubBits = *subBits
	report, err := core.Inspect(dev, opts)
	if err != nil {
		fail(err)
	}
	fmt.Print(report)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mgspdump:", err)
	os.Exit(1)
}
