// Command mgspbench regenerates the paper's tables and figures against the
// simulated NVM substrate. It is the equivalent of the artifact's
// evaluation/fio/scripts/run_all.sh plus the SQLite runs:
//
//	mgspbench -exp all -scale quick
//	mgspbench -exp fig8,table2 -scale full
//
// Each experiment prints the rows/series of the corresponding figure or
// table in the paper (throughput in MiB/s of virtual time, write
// amplification ratios, transactions per second, tpmC, recovery time).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mgsp/internal/bench"
	"mgsp/internal/fio"
	"mgsp/internal/sqlite"
)

var experiments = []string{"fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "table2", "recovery", "cleaner", "snapshot", "ext-atomic", "torture"}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: "+strings.Join(experiments, ",")+" or 'all'")
	scaleName := flag.String("scale", "quick", "experiment scale: quick | full")
	flag.Parse()

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.Quick()
	case "full":
		sc = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range experiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	run := func(name string, fn func() ([]*bench.Table, error)) {
		if !want[name] {
			return
		}
		start := time.Now()
		tables, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	one := func(t *bench.Table, err error) ([]*bench.Table, error) {
		return []*bench.Table{t}, err
	}

	run("fig1", func() ([]*bench.Table, error) { return one(bench.Fig1(sc)) })
	run("fig7", func() ([]*bench.Table, error) { return one(bench.Fig7(sc)) })
	run("fig8", func() ([]*bench.Table, error) {
		var out []*bench.Table
		for _, op := range []fio.Op{fio.SeqWrite, fio.RandWrite, fio.SeqRead, fio.RandRead} {
			t, err := bench.Fig8(sc, op)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	})
	run("fig9", func() ([]*bench.Table, error) { return one(bench.Fig9(sc)) })
	run("fig10", func() ([]*bench.Table, error) {
		var out []*bench.Table
		for _, bs := range []int{1024, 4096, 16 << 10} {
			for _, op := range []fio.Op{fio.SeqWrite, fio.RandWrite} {
				t, err := bench.Fig10(sc, bs, op)
				if err != nil {
					return nil, err
				}
				out = append(out, t)
			}
		}
		return out, nil
	})
	run("fig11", func() ([]*bench.Table, error) {
		var out []*bench.Table
		for _, mode := range []sqlite.JournalMode{sqlite.WAL, sqlite.Off} {
			t, err := bench.Fig11(sc, mode)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	})
	run("fig12", func() ([]*bench.Table, error) { return one(bench.Fig12(sc)) })
	run("fig13", func() ([]*bench.Table, error) { return one(bench.Fig13(sc)) })
	run("table2", func() ([]*bench.Table, error) { return one(bench.TableII(sc)) })
	run("recovery", func() ([]*bench.Table, error) { return one(bench.Recovery(sc)) })
	run("cleaner", func() ([]*bench.Table, error) { return one(bench.Cleaner(sc)) })
	run("snapshot", func() ([]*bench.Table, error) { return one(bench.Snapshot(sc)) })
	run("ext-atomic", func() ([]*bench.Table, error) { return one(bench.ExtAtomic(sc)) })
	run("torture", func() ([]*bench.Table, error) { return one(bench.Torture(sc)) })
}
