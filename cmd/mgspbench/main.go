// Command mgspbench regenerates the paper's tables and figures against the
// simulated NVM substrate. It is the equivalent of the artifact's
// evaluation/fio/scripts/run_all.sh plus the SQLite runs:
//
//	mgspbench -exp all -scale quick
//	mgspbench -exp fig8,table2 -scale full
//	mgspbench -exp core -scale smoke -json BENCH_core.json
//
// Each experiment prints the rows/series of the corresponding figure or
// table in the paper (throughput in MiB/s of virtual time, write
// amplification ratios, transactions per second, tpmC, recovery time).
// With -json, every produced table — plus the `core` experiment's obs
// metrics and latency histograms — is also written as a versioned
// mgsp-bench/v1 report that `mgspstat -validate` checks. With -listen, the
// process serves the most recent instrumented run's obs snapshot at
// /metrics (Prometheus text), /metrics.json, and /trace.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"mgsp/internal/bench"
	"mgsp/internal/fio"
	"mgsp/internal/obs"
	"mgsp/internal/sqlite"
)

var experiments = []string{"fig1", "fig7", "fig8", "fig9", "fig10", "fig10s", "fig11", "fig12", "fig13", "table2", "recovery", "cleaner", "snapshot", "ext-atomic", "torture", "core", "mixed", "kv", "ingest"}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: "+strings.Join(experiments, ",")+" or 'all'")
	scaleName := flag.String("scale", "quick", "experiment scale: quick | full | smoke")
	jsonPath := flag.String("json", "", "also write a mgsp-bench/v1 JSON report to this path")
	listen := flag.String("listen", "", "after the runs, serve obs metrics on this address (e.g. :8080)")
	serverAddr := flag.String("server", "", "drive the kv/ingest experiments against this live mgspd address instead of in-process")
	flag.Parse()

	var sc bench.Scale
	switch *scaleName {
	case "quick":
		sc = bench.Quick()
	case "full":
		sc = bench.Full()
	case "smoke":
		sc = bench.Smoke()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range experiments {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	var allTables []*bench.Table
	metrics := map[string]float64{}
	hists := map[string]obs.HistSnapshot{}

	run := func(name string, fn func() ([]*bench.Table, error)) {
		if !want[name] {
			return
		}
		start := time.Now()
		tables, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		allTables = append(allTables, tables...)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	one := func(t *bench.Table, err error) ([]*bench.Table, error) {
		return []*bench.Table{t}, err
	}

	run("fig1", func() ([]*bench.Table, error) { return one(bench.Fig1(sc)) })
	run("fig7", func() ([]*bench.Table, error) { return one(bench.Fig7(sc)) })
	run("fig8", func() ([]*bench.Table, error) {
		var out []*bench.Table
		for _, op := range []fio.Op{fio.SeqWrite, fio.RandWrite, fio.SeqRead, fio.RandRead} {
			t, err := bench.Fig8(sc, op)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	})
	run("fig9", func() ([]*bench.Table, error) { return one(bench.Fig9(sc)) })
	run("fig10", func() ([]*bench.Table, error) {
		var out []*bench.Table
		for _, bs := range []int{1024, 4096, 16 << 10} {
			for _, op := range []fio.Op{fio.SeqWrite, fio.RandWrite} {
				t, err := bench.Fig10(sc, bs, op)
				if err != nil {
					return nil, err
				}
				out = append(out, t)
			}
		}
		return out, nil
	})
	run("fig10s", func() ([]*bench.Table, error) {
		t, m, err := bench.Fig10Scale(sc)
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			metrics[k] = v
		}
		return []*bench.Table{t}, nil
	})
	run("fig11", func() ([]*bench.Table, error) {
		var out []*bench.Table
		for _, mode := range []sqlite.JournalMode{sqlite.WAL, sqlite.Off} {
			t, err := bench.Fig11(sc, mode)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	})
	run("fig12", func() ([]*bench.Table, error) { return one(bench.Fig12(sc)) })
	run("fig13", func() ([]*bench.Table, error) { return one(bench.Fig13(sc)) })
	run("table2", func() ([]*bench.Table, error) { return one(bench.TableII(sc)) })
	run("recovery", func() ([]*bench.Table, error) { return one(bench.Recovery(sc)) })
	run("cleaner", func() ([]*bench.Table, error) { return one(bench.Cleaner(sc)) })
	run("snapshot", func() ([]*bench.Table, error) { return one(bench.Snapshot(sc)) })
	run("ext-atomic", func() ([]*bench.Table, error) { return one(bench.ExtAtomic(sc)) })
	run("torture", func() ([]*bench.Table, error) { return one(bench.Torture(sc)) })
	run("kv", func() ([]*bench.Table, error) { return one(bench.KV(sc, *serverAddr)) })
	run("ingest", func() ([]*bench.Table, error) { return one(bench.Ingest(sc, *serverAddr)) })
	run("core", func() ([]*bench.Table, error) {
		t, m, h, err := bench.Core(sc)
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			metrics[k] = v
		}
		for k, v := range h {
			hists[k] = v
		}
		return []*bench.Table{t}, nil
	})
	run("mixed", func() ([]*bench.Table, error) {
		t, m, h, err := bench.Mixed(sc)
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			metrics[k] = v
		}
		for k, v := range h {
			hists[k] = v
		}
		return []*bench.Table{t}, nil
	})

	if *jsonPath != "" {
		if len(allTables) == 0 {
			fmt.Fprintf(os.Stderr, "-json: no experiment ran (check -exp)\n")
			os.Exit(1)
		}
		rep := bench.BuildReport(*exp, *scaleName, sc, allTables, metrics, hists)
		if err := rep.WriteJSONFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", *jsonPath, bench.ReportSchema)
	}

	if *listen != "" {
		fmt.Printf("serving obs snapshot on %s (/metrics, /metrics.json, /trace)\n", *listen)
		h := obs.Handler(bench.LiveSnapshot, bench.LiveTraceRing())
		if err := http.ListenAndServe(*listen, h); err != nil {
			fmt.Fprintf(os.Stderr, "-listen: %v\n", err)
			os.Exit(1)
		}
	}
}
