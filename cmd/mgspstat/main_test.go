package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mgsp/internal/bench"
	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

// capture runs fn with os.Stdout redirected into a buffer.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		b.ReadFrom(r)
		done <- b.String()
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestFetchAndParse(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("core.writes").Add(7)
	reg.Histogram("fs.write_ns").Observe(100)
	ring := obs.NewTraceRing(8)
	srv := httptest.NewServer(obs.Handler(func() *obs.Snapshot { return reg.Snapshot() }, ring))
	defer srv.Close()

	data, err := fetch(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	s := parse(data)
	if s.Values["core.writes"] != 7 {
		t.Fatalf("core.writes = %v, want 7", s.Values["core.writes"])
	}
	out := capture(t, func() { printSnapshot(s, false) })
	if !strings.Contains(out, "core.writes") {
		t.Fatalf("human output missing counter:\n%s", out)
	}
	out = capture(t, func() { printSnapshot(s, true) })
	if !strings.Contains(out, "mgsp_core_writes 7") {
		t.Fatalf("prometheus output missing counter:\n%s", out)
	}
}

// TestFromImage saves a device image after some writes and checks that
// mgspstat's -img path mounts it and reports recovery observability.
func TestFromImage(t *testing.T) {
	dev := nvm.New(64<<20, sim.ZeroCosts())
	fs := core.MustNew(dev, core.DefaultOptions())
	ctx := sim.NewCtx(0, 1)
	h, err := fs.Create(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(ctx, make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Fsync(ctx); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crash.img")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := capture(t, func() { fromImage(path, 64, 8, false) })
	for _, want := range []string{"recovery.mount_ns", "core.entries_replayed", "trace:"} {
		if !strings.Contains(out, want) {
			t.Errorf("-img output missing %q:\n%s", want, out)
		}
	}
}

func TestValidateReportOutput(t *testing.T) {
	tab := bench.NewTable("t", "t", "u", []string{"c"}, []string{"r"})
	rep := bench.BuildReport("core", "smoke", bench.Smoke(), []*bench.Table{tab},
		map[string]float64{"r/wa.ratio": 1.02}, nil)
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	if err := rep.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() { validateReport(path) })
	if !strings.Contains(out, "valid mgsp-bench/v1 report") || !strings.Contains(out, "wa.ratio") {
		t.Fatalf("validate summary wrong:\n%s", out)
	}
}
