// Command mgspstat inspects MGSP observability artifacts: obs-registry
// snapshots (mgsp-obs/v1), live /metrics.json endpoints served by
// `mgspbench -listen`, saved device images, and mgsp-bench/v1 reports.
//
//	mgspstat snap.json                 print a saved obs snapshot
//	mgspstat -prom snap.json           same, as Prometheus text
//	mgspstat -diff before.json after.json
//	                                   print the delta between two snapshots
//	mgspstat -url http://host:8080     fetch and print a live snapshot
//	mgspstat -url http://host:8080 -validate
//	                                   fetch and schema-check it (mgspd's
//	                                   obs port; serve-smoke gates on this)
//	mgspstat -img crash.img            mount the image and print the obs
//	                                   registry after recovery (mount timing,
//	                                   entries replayed, recovery trace)
//	mgspstat -validate BENCH_core.json validate a bench -json report and
//	                                   summarize it
//
// Snapshot JSON is whatever /metrics.json serves or Snapshot.WriteJSON
// writes, so a monitoring pipeline can round-trip artifacts through this
// tool without touching the library.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"mgsp/internal/bench"
	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/obs"
	"mgsp/internal/sim"
)

func main() {
	diff := flag.Bool("diff", false, "diff two snapshot files: mgspstat -diff before.json after.json")
	prom := flag.Bool("prom", false, "print snapshots as Prometheus text instead of the human form")
	url := flag.String("url", "", "fetch a live snapshot from this mgspbench -listen base URL")
	img := flag.String("img", "", "mount this saved device image and print its recovery observability")
	degree := flag.Int("degree", 64, "radix degree the image was written with (-img)")
	subBits := flag.Int("subbits", 8, "leaf valid bits the image was written with (-img)")
	validate := flag.Bool("validate", false, "validate a mgsp-bench/v1 report file and summarize it")
	flag.Parse()

	switch {
	case *url != "":
		if flag.NArg() != 0 {
			usage("-url takes no positional arguments")
		}
		data, err := fetch(strings.TrimRight(*url, "/") + "/metrics.json")
		if err != nil {
			fail(err)
		}
		if *validate {
			validateLive(*url, data)
			return
		}
		printSnapshot(parse(data), *prom)
	case *validate:
		if flag.NArg() != 1 {
			usage("-validate takes exactly one report file")
		}
		validateReport(flag.Arg(0))
	case *img != "":
		if flag.NArg() != 0 {
			usage("-img takes no positional arguments")
		}
		fromImage(*img, *degree, *subBits, *prom)
	case *diff:
		if flag.NArg() != 2 {
			usage("-diff takes exactly two snapshot files")
		}
		before := parse(readFile(flag.Arg(0)))
		after := parse(readFile(flag.Arg(1)))
		fmt.Printf("delta %s -> %s\n", flag.Arg(0), flag.Arg(1))
		printSnapshot(after.Diff(before), *prom)
	case flag.NArg() == 1:
		printSnapshot(parse(readFile(flag.Arg(0))), *prom)
	default:
		usage("")
	}
}

func printSnapshot(s *obs.Snapshot, prom bool) {
	if prom {
		if err := s.WritePrometheus(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(s.String())
}

// fromImage loads a saved durable image, runs the recovery protocol, and
// prints the freshly mounted file system's registry — mount latency,
// entries replayed/skipped, and the recovery trace event.
func fromImage(path string, degree, subBits int, prom bool) {
	r, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer r.Close()
	dev, err := nvm.LoadImage(r, func(size int64) *nvm.Device {
		return nvm.New(size, sim.ZeroCosts())
	})
	if err != nil {
		fail(err)
	}
	dev.Recover()
	opts := core.DefaultOptions()
	opts.Degree = degree
	opts.SubBits = subBits
	fs, err := core.Mount(sim.NewCtx(0, 1), dev, opts)
	if err != nil {
		fail(err)
	}
	printSnapshot(fs.Obs().Snapshot(), prom)
	if !prom {
		fmt.Println("trace:")
		if err := fs.TraceRing().Format(os.Stdout); err != nil {
			fail(err)
		}
	}
}

// validateLive schema-checks a fetched /metrics.json body (mgsp-obs/v1) and
// prints a one-line summary. This is the serve-smoke gate: a live mgspd must
// serve a parseable snapshot that actually contains server counters.
func validateLive(url string, data []byte) {
	s, err := obs.ParseSnapshot(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", url, err))
	}
	if len(s.Values) == 0 {
		fail(fmt.Errorf("%s: valid %s snapshot but no values", url, s.Schema))
	}
	fmt.Printf("%s: valid %s snapshot (%d values, %d histograms)\n",
		url, s.Schema, len(s.Values), len(s.Hists))
}

// validateReport checks a mgspbench -json artifact against the bench schema
// and prints a one-screen summary; a bad artifact exits nonzero, which is
// what `make bench-smoke` gates on.
func validateReport(path string) {
	rep, err := bench.ValidateReport(readFile(path))
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: valid %s report (experiment %q, scale %s)\n",
		path, rep.Schema, rep.Experiment, rep.Config.Scale)
	for _, t := range rep.Tables {
		fmt.Printf("  table %-12s %d x %d  %s\n", t.ID, len(t.Rows), len(t.Cols), t.Title)
	}
	if len(rep.Metrics) > 0 {
		names := make([]string, 0, len(rep.Metrics))
		for k := range rep.Metrics {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Printf("  %d metrics:\n", len(names))
		for _, k := range names {
			fmt.Printf("    %-42s %g\n", k, rep.Metrics[k])
		}
	}
	if len(rep.Hists) > 0 {
		names := make([]string, 0, len(rep.Hists))
		for k := range rep.Hists {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Printf("  %d histograms:\n", len(names))
		for _, k := range names {
			h := rep.Hists[k]
			fmt.Printf("    %-42s n=%d p50=%d p95=%d p99=%d max=%d\n",
				k, h.Count, h.P50, h.P95, h.P99, h.Max)
		}
	}
}

func parse(data []byte) *obs.Snapshot {
	s, err := obs.ParseSnapshot(data)
	if err != nil {
		fail(err)
	}
	return s
}

func readFile(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	return data
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mgspstat: %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func usage(msg string) {
	if msg != "" {
		fmt.Fprintln(os.Stderr, "mgspstat:", msg)
	}
	fmt.Fprintln(os.Stderr, "usage: mgspstat [-prom] <snap.json> | -diff a.json b.json | -url http://host:port | -img image | -validate report.json")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mgspstat:", err)
	os.Exit(1)
}
