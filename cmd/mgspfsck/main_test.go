package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

// TestFsckTortureImage: a concurrent torture workload crashed mid-flight
// must come back clean through recovery — exit 0 — and the saved crashed
// image must fsck clean when re-loaded from disk.
func TestFsckTortureImage(t *testing.T) {
	img := filepath.Join(t.TempDir(), "crash.img")
	var out, errb bytes.Buffer
	code := run([]string{"-torture", "-writers", "4", "-seed", "7", "-crash-after", "300", "-save", img}, &out, &errb)
	if code != 0 {
		t.Fatalf("torture-mode fsck exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("no ok verdict:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-load", img}, &out, &errb)
	if code != 0 {
		t.Fatalf("loading saved torture image exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestFsckTortureImageSweep: several crash indices, all recovering clean.
func TestFsckTortureImageSweep(t *testing.T) {
	for _, crash := range []int64{50, 120, 260, 410} {
		var out, errb bytes.Buffer
		code := run([]string{"-torture", "-writers", "4", "-seed", "3",
			"-crash-after", strconv.FormatInt(crash, 10)}, &out, &errb)
		if code != 0 {
			t.Fatalf("crash-after=%d exited %d\nstderr:\n%s", crash, code, errb.String())
		}
	}
}

// TestFsckCorruptedImageFails: an image whose directory was deliberately
// damaged (a committed metadata-log chain referencing a cleared record —
// the signature of a lost directory store) must make fsck exit nonzero.
func TestFsckCorruptedImageFails(t *testing.T) {
	opts := core.DefaultOptions()
	dev := nvm.New(8<<20, sim.ZeroCosts())
	fs := core.MustNew(dev, opts)
	ctx := sim.NewCtx(0, 1)
	f, err := fs.Create(ctx, "victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, bytes.Repeat([]byte{0x5a}, 64<<10), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Fsync(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := core.CorruptDirectoryRecord(dev, opts); err != nil {
		t.Fatal(err)
	}
	img := filepath.Join(t.TempDir(), "corrupt.img")
	w, err := os.Create(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Save(w); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var out, errb bytes.Buffer
	code := run([]string{"-load", img}, &out, &errb)
	if code == 0 {
		t.Fatalf("fsck accepted a corrupted directory image\nstdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "unknown record") {
		t.Fatalf("expected the unknown-record recovery refusal, got:\n%s", errb.String())
	}
}

// TestFsckScriptedWorkload keeps the original single-writer mode honest
// with a small parameter set.
func TestFsckScriptedWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-file-mib", "4", "-ops", "200", "-crash-after", "1500", "-seed", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("scripted fsck exited %d\nstderr:\n%s", code, errb.String())
	}
}
