// Command mgspfsck demonstrates MGSP crash recovery end to end: it builds a
// workload on a simulated device (optionally snapshotting the file partway
// through so copy-on-write pins are in play), injects a crash at a chosen
// media-op index, remounts the file system through the §III-D recovery
// protocol, and reports what survived — including the recovery time the
// paper quantifies. After recovery it audits the block allocator: every
// allocated block must be reachable from a file extent, a live shadow log,
// or a snapshot pin. Leaked (orphaned) or double-accounted blocks make the
// command exit nonzero.
//
//	mgspfsck -file-mib 64 -ops 2000 -crash-after 5000
//
// Two alternate modes share the same recovery checker:
//
//	mgspfsck -torture -writers 4 -crash-after 300   # concurrent torture workload
//	mgspfsck -load image.bin                        # fsck a saved device image
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
	"mgsp/internal/torture"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("mgspfsck", flag.ContinueOnError)
	fl.SetOutput(stderr)
	fileMiB := fl.Int64("file-mib", 64, "file size in MiB")
	ops := fl.Int("ops", 2000, "random 4K writes before/while crashing")
	crashAfter := fl.Int64("crash-after", 4000, "media operations before the injected crash")
	seed := fl.Int64("seed", 1, "crash-tear PRNG seed")
	save := fl.String("save", "", "save the crashed (pre-recovery) device image to this file for mgspdump")
	cleanInt := fl.Int64("cleaner-interval", 0, "background cleaner pass interval in virtual ns (0 = disabled)")
	cleanBudget := fl.Int64("cleaner-budget", 0, "blocks reclaimed per cleaner pass (0 = unbounded)")
	snap := fl.Bool("snap", true, "take a snapshot halfway through the workload (exercises CoW pins)")
	tortureMode := fl.Bool("torture", false, "crash a concurrent multi-writer torture workload instead of the scripted one")
	writers := fl.Int("writers", 4, "torture mode: concurrent writer count")
	load := fl.String("load", "", "fsck a device image saved with -save (skips workload generation)")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	opts := core.DefaultOptions()
	opts.CleanerInterval = *cleanInt
	opts.CleanerBudget = *cleanBudget

	switch {
	case *load != "":
		r, err := os.Open(*load)
		if err != nil {
			return fail(stderr, err)
		}
		dev, err := nvm.LoadImage(r, func(size int64) *nvm.Device {
			return nvm.New(size, sim.DefaultCosts())
		})
		r.Close()
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "loaded %d MiB image from %s\n", dev.Size()>>20, *load)
		return check(dev, opts, "", stdout, stderr)

	case *tortureMode:
		cfg := torture.Config{Writers: *writers, Seed: *seed, CrashAt: *crashAfter}
		dev, err := torture.CrashedDevice(cfg)
		if err != nil {
			return fail(stderr, err)
		}
		crashOp, crashWorker := dev.CrashInfo()
		fmt.Fprintf(stdout, "torture workload (%d writers) crashed: media op %d torn under worker %d\n",
			*writers, crashOp, crashWorker)
		if code := saveImage(dev, *save, stdout, stderr); code != 0 {
			return code
		}
		return check(dev, opts, torture.FileName, stdout, stderr)
	}

	fileSize := *fileMiB << 20
	dev := nvm.New(fileSize*4+(64<<20), sim.DefaultCosts())
	fs, err := core.New(dev, opts)
	if err != nil {
		return fail(stderr, err)
	}
	ctx := sim.NewCtx(0, *seed)

	f, err := fs.Create(ctx, "data")
	if err != nil {
		return fail(stderr, err)
	}
	chunk := make([]byte, 1<<20)
	for off := int64(0); off < fileSize; off += 1 << 20 {
		if _, err := f.WriteAt(ctx, chunk, off); err != nil {
			return fail(stderr, err)
		}
	}
	fmt.Fprintf(stdout, "laid out %d MiB file; running %d random 4K writes, crash armed after %d media ops\n",
		*fileMiB, *ops, *crashAfter)

	dev.ArmCrash(*crashAfter, *seed)
	completed := 0
	var setupErr error
	func() {
		defer func() {
			if r := recover(); r != nil && r != nvm.ErrCrashed {
				panic(r)
			}
		}()
		buf := make([]byte, 4096)
		for i := 0; i < *ops; i++ {
			if *snap && i == *ops/2 {
				id, err := fs.Snapshot(ctx, "data")
				if err != nil {
					setupErr = err
					return
				}
				fmt.Fprintf(stdout, "snapshot %d taken after %d writes; remainder runs copy-on-write\n", id, completed)
			}
			off := ctx.Rand.Int63n(fileSize/4096) * 4096
			if _, err := f.WriteAt(ctx, buf, off); err != nil {
				setupErr = err
				return
			}
			completed++
		}
	}()
	if setupErr != nil {
		return fail(stderr, setupErr)
	}
	if dev.Crashed() {
		fmt.Fprintf(stdout, "CRASH after %d completed writes (mid-operation torn at 8-byte granularity)\n", completed)
	} else {
		fmt.Fprintf(stdout, "workload finished without reaching the fail point (%d writes)\n", completed)
	}
	if c := fs.Cleaner(); c != nil {
		cs := c.Stats()
		fmt.Fprintf(stdout, "cleaner: %d passes, %d blocks reclaimed, %d checkpoints, %d log blocks outstanding\n",
			cs.Passes, cs.BlocksReclaimed, cs.Checkpoints, fs.LogBlocks())
	}
	dev.DisarmCrash()
	if code := saveImage(dev, *save, stdout, stderr); code != 0 {
		return code
	}
	return check(dev, opts, "data", stdout, stderr)
}

// saveImage writes the crashed (pre-recovery) durable image to path.
func saveImage(dev *nvm.Device, path string, stdout, stderr io.Writer) int {
	if path == "" {
		return 0
	}
	w, err := os.Create(path)
	if err != nil {
		return fail(stderr, err)
	}
	if err := dev.Save(w); err != nil {
		w.Close()
		return fail(stderr, err)
	}
	if err := w.Close(); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "crashed image saved to %s (inspect with mgspdump)\n", path)
	return 0
}

// check is the recovery checker every mode funnels into: drop volatile
// state, Mount through the recovery protocol, report what survived, and
// audit the block allocator. Exit 0 iff recovery succeeds and the audit is
// clean.
func check(dev *nvm.Device, opts core.Options, name string, stdout, stderr io.Writer) int {
	dev.Recover()
	wrote := dev.Stats().MediaWriteBytes.Load()
	rctx := sim.NewCtx(1, 1)
	fs2, err := core.Mount(rctx, dev, opts)
	if err != nil {
		return fail(stderr, fmt.Errorf("recovery failed: %w", err))
	}
	back := dev.Stats().MediaWriteBytes.Load() - wrote
	fmt.Fprintf(stdout, "recovery: %.2f ms virtual time, %.1f MiB written back\n",
		float64(rctx.Now())/1e6, float64(back)/(1<<20))
	st := fs2.Stats()
	fmt.Fprintf(stdout, "recovery replay: %d entries replayed, %d skipped as pre-checkpoint\n",
		st.EntriesReplayed.Load(), st.EntriesSkipped.Load())

	if name != "" {
		f2, err := fs2.Open(rctx, name)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "file %q recovered: %d bytes\n", name, f2.Size())
		if infos, err := fs2.Snapshots(rctx, name); err == nil {
			for _, s := range infos {
				fmt.Fprintf(stdout, "snapshot %d recovered: frozen-size=%d pins=%d pinned-blocks=%d\n",
					s.ID, s.Size, s.Pins, s.PinnedBlocks)
			}
		}
	}

	// Leaked-block audit: every allocated block must be reachable from a
	// file extent, a live shadow log, or a snapshot pin.
	rep := fs2.AuditBlocks()
	fmt.Fprintf(stdout, "block audit: %d allocated, %d reachable\n", rep.Allocated, rep.Reachable)
	if !rep.Clean() {
		for _, off := range rep.Orphans {
			fmt.Fprintf(stderr, "mgspfsck: LEAKED block at offset %d (allocated, unreachable)\n", off)
		}
		for _, off := range rep.Unallocated {
			fmt.Fprintf(stderr, "mgspfsck: PHANTOM block at offset %d (reachable, not allocated)\n", off)
		}
		return fail(stderr, fmt.Errorf("block audit failed: %d orphans, %d phantoms", len(rep.Orphans), len(rep.Unallocated)))
	}
	fmt.Fprintln(stdout, "ok")
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "mgspfsck:", err)
	return 1
}
