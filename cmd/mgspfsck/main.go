// Command mgspfsck demonstrates MGSP crash recovery end to end: it builds a
// workload on a simulated device (optionally snapshotting the file partway
// through so copy-on-write pins are in play), injects a crash at a chosen
// media-op index, remounts the file system through the §III-D recovery
// protocol, and reports what survived — including the recovery time the
// paper quantifies. After recovery it audits the block allocator: every
// allocated block must be reachable from a file extent, a live shadow log,
// or a snapshot pin. Leaked (orphaned) or double-accounted blocks make the
// command exit nonzero.
//
//	mgspfsck -file-mib 64 -ops 2000 -crash-after 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"mgsp/internal/core"
	"mgsp/internal/nvm"
	"mgsp/internal/sim"
)

func main() {
	fileMiB := flag.Int64("file-mib", 64, "file size in MiB")
	ops := flag.Int("ops", 2000, "random 4K writes before/while crashing")
	crashAfter := flag.Int64("crash-after", 4000, "media operations before the injected crash")
	seed := flag.Int64("seed", 1, "crash-tear PRNG seed")
	save := flag.String("save", "", "save the crashed (pre-recovery) device image to this file for mgspdump")
	cleanInt := flag.Int64("cleaner-interval", 0, "background cleaner pass interval in virtual ns (0 = disabled)")
	cleanBudget := flag.Int64("cleaner-budget", 0, "blocks reclaimed per cleaner pass (0 = unbounded)")
	snap := flag.Bool("snap", true, "take a snapshot halfway through the workload (exercises CoW pins)")
	flag.Parse()

	opts := core.DefaultOptions()
	opts.CleanerInterval = *cleanInt
	opts.CleanerBudget = *cleanBudget

	fileSize := *fileMiB << 20
	dev := nvm.New(fileSize*4+(64<<20), sim.DefaultCosts())
	fs, err := core.New(dev, opts)
	if err != nil {
		fail(err)
	}
	ctx := sim.NewCtx(0, *seed)

	f, err := fs.Create(ctx, "data")
	if err != nil {
		fail(err)
	}
	chunk := make([]byte, 1<<20)
	for off := int64(0); off < fileSize; off += 1 << 20 {
		if _, err := f.WriteAt(ctx, chunk, off); err != nil {
			fail(err)
		}
	}
	fmt.Printf("laid out %d MiB file; running %d random 4K writes, crash armed after %d media ops\n",
		*fileMiB, *ops, *crashAfter)

	dev.ArmCrash(*crashAfter, *seed)
	completed := 0
	func() {
		defer func() {
			if r := recover(); r != nil && r != nvm.ErrCrashed {
				panic(r)
			}
		}()
		buf := make([]byte, 4096)
		for i := 0; i < *ops; i++ {
			if *snap && i == *ops/2 {
				id, err := fs.Snapshot(ctx, "data")
				if err != nil {
					fail(err)
				}
				fmt.Printf("snapshot %d taken after %d writes; remainder runs copy-on-write\n", id, completed)
			}
			off := ctx.Rand.Int63n(fileSize/4096) * 4096
			if _, err := f.WriteAt(ctx, buf, off); err != nil {
				fail(err)
			}
			completed++
		}
	}()
	if dev.Crashed() {
		fmt.Printf("CRASH after %d completed writes (mid-operation torn at 8-byte granularity)\n", completed)
	} else {
		fmt.Printf("workload finished without reaching the fail point (%d writes)\n", completed)
	}
	if c := fs.Cleaner(); c != nil {
		cs := c.Stats()
		fmt.Printf("cleaner: %d passes, %d blocks reclaimed, %d checkpoints, %d log blocks outstanding\n",
			cs.Passes, cs.BlocksReclaimed, cs.Checkpoints, fs.LogBlocks())
	}
	dev.DisarmCrash()
	dev.Recover()
	if *save != "" {
		w, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		if err := dev.Save(w); err != nil {
			fail(err)
		}
		w.Close()
		fmt.Printf("crashed image saved to %s (inspect with mgspdump)\n", *save)
	}

	wrote := dev.Stats().MediaWriteBytes.Load()
	rctx := sim.NewCtx(1, *seed)
	fs2, err := core.Mount(rctx, dev, opts)
	if err != nil {
		fail(fmt.Errorf("recovery failed: %w", err))
	}
	back := dev.Stats().MediaWriteBytes.Load() - wrote
	fmt.Printf("recovery: %.2f ms virtual time, %.1f MiB written back\n",
		float64(rctx.Now())/1e6, float64(back)/(1<<20))
	st := fs2.Stats()
	fmt.Printf("recovery replay: %d entries replayed, %d skipped as pre-checkpoint\n",
		st.EntriesReplayed.Load(), st.EntriesSkipped.Load())

	f2, err := fs2.Open(rctx, "data")
	if err != nil {
		fail(err)
	}
	fmt.Printf("file %q recovered: %d bytes\n", "data", f2.Size())
	if infos, err := fs2.Snapshots(rctx, "data"); err == nil {
		for _, s := range infos {
			fmt.Printf("snapshot %d recovered: frozen-size=%d pins=%d pinned-blocks=%d\n",
				s.ID, s.Size, s.Pins, s.PinnedBlocks)
		}
	}

	// Leaked-block audit: every allocated block must be reachable from a
	// file extent, a live shadow log, or a snapshot pin.
	rep := fs2.AuditBlocks()
	fmt.Printf("block audit: %d allocated, %d reachable\n", rep.Allocated, rep.Reachable)
	if !rep.Clean() {
		for _, off := range rep.Orphans {
			fmt.Fprintf(os.Stderr, "mgspfsck: LEAKED block at offset %d (allocated, unreachable)\n", off)
		}
		for _, off := range rep.Unallocated {
			fmt.Fprintf(os.Stderr, "mgspfsck: PHANTOM block at offset %d (reachable, not allocated)\n", off)
		}
		fail(fmt.Errorf("block audit failed: %d orphans, %d phantoms", len(rep.Orphans), len(rep.Unallocated)))
	}
	fmt.Println("ok")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mgspfsck:", err)
	os.Exit(1)
}
