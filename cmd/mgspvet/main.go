// Command mgspvet is the MGSP static-analysis vettool: four
// golang.org/x/tools/go/analysis passes enforcing the crash-consistency
// invariants the paper's correctness argument rests on (persist ordering,
// crash-safe lock discipline, atomics hygiene, checksum-before-publish).
//
// It speaks the `go vet -vettool` protocol:
//
//	go build -o bin/mgspvet ./cmd/mgspvet
//	go vet -vettool=$(pwd)/bin/mgspvet ./...
//
// or via the Makefile: make vet. See DESIGN.md §11 for each analyzer's
// invariant, its grounding in the paper, and the //mgsp: annotation grammar.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"mgsp/internal/analysis/atomicfield"
	"mgsp/internal/analysis/checksumpub"
	"mgsp/internal/analysis/crashsafelocks"
	"mgsp/internal/analysis/persistorder"
)

func main() {
	unitchecker.Main(
		persistorder.Analyzer,
		crashsafelocks.Analyzer,
		atomicfield.Analyzer,
		checksumpub.Analyzer,
	)
}
