// Command mgspvet is the MGSP static-analysis vettool: an interprocedural
// summary engine (mgspsummary, exporting per-function effect facts across
// package boundaries) plus eight golang.org/x/tools/go/analysis passes
// enforcing the crash-consistency invariants the paper's correctness
// argument rests on — persist ordering, crash-safe lock discipline, the
// declared lock hierarchy, seqlock read validation, dependent-store
// ordering, atomics hygiene, checksum-before-publish, and the freshness of
// the //mgsp: annotations themselves.
//
// It speaks the `go vet -vettool` protocol:
//
//	go build -o bin/mgspvet ./cmd/mgspvet
//	go vet -vettool=$(pwd)/bin/mgspvet ./...
//
// or via the Makefile: make vet (human output) / make vet-report (JSONL
// artifact, including suppressed findings, via -mgspsummary.report). See
// DESIGN.md §15 for each analyzer's invariant, its grounding in the paper,
// and the //mgsp: annotation grammar.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"mgsp/internal/analysis/atomicfield"
	"mgsp/internal/analysis/checksumpub"
	"mgsp/internal/analysis/crashsafelocks"
	"mgsp/internal/analysis/lockorder"
	"mgsp/internal/analysis/persistorder"
	"mgsp/internal/analysis/seqlockver"
	"mgsp/internal/analysis/staleannot"
	"mgsp/internal/analysis/summary"
	"mgsp/internal/analysis/twostore"
)

func main() {
	unitchecker.Main(
		summary.Analyzer,
		persistorder.Analyzer,
		crashsafelocks.Analyzer,
		lockorder.Analyzer,
		seqlockver.Analyzer,
		twostore.Analyzer,
		atomicfield.Analyzer,
		checksumpub.Analyzer,
		staleannot.Analyzer,
	)
}
