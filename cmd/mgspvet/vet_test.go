package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestTreeClean builds the vettool and runs it over the whole repository,
// asserting zero unsuppressed findings. This is the merge gate in test form:
// a PR that introduces a lock-order inversion, an unfenced dependent store,
// or a leaky optimistic read section fails `go test ./...` even if it never
// ran `make vet`.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the vettool and re-vets the tree")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/mgspvet -> repo root
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}

	tool := filepath.Join(t.TempDir(), "mgspvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/mgspvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mgspvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("mgspvet is not clean on the tree: %v\n%s", err, out)
	}
}
